"""Supervised worker processes behind the analysis acceptor.

PR 9's daemon computed every request inside its own
``ThreadPoolExecutor``: one poisoned request (a segfaulting extension,
a runaway C loop, an OOM kill) took the whole daemon -- and every other
in-flight client -- down with it.  This module moves the compute into
N supervised **worker processes** so a worker death kills exactly one
request attempt:

* :func:`run_work` -- the single spec-driven execution function.  Both
  the in-process :class:`ThreadedExecutor` (``--fleet 0``) and every
  fleet worker run *this* function on *the same spec*, which is what
  makes fleet-mode reports byte-identical to threaded-mode reports by
  construction (and both byte-identical to the one-shot CLI, because
  ``run_work`` calls the shared execution layer in
  :mod:`repro.service.requests`).
* :class:`WorkerFleet` -- N ``multiprocessing`` workers, each paired
  with a parent-side supervising thread that feeds it tasks from a
  shared queue and watches for crashes (pipe EOF / dead process),
  hangs (per-request hard deadline derived from the QoS wall budget),
  and preemption requests.  The supervision idiom mirrors
  :class:`repro.resilience.supervisor.ShardSupervisor`: crash detection,
  bounded retry with exponential backoff
  (``retry_backoff * 2**attempt``), kill-and-respawn on a tripped
  deadline.  Counters: ``service.worker_crashes``,
  ``service.request_retries``, ``service.worker_timeouts``,
  ``service.worker_respawns``, ``service.preemptions``.
* :class:`ThreadedExecutor` -- the deterministic in-process fallback at
  ``--fleet 0`` (the PR 9 behavior): same ``run_work``, same frames,
  no process isolation.

Exceptions *inside* the request (bad params, resilience failures) are
converted to structured error frames by :func:`run_work` itself, so a
task future only ever raises for **infrastructure** failures:
:class:`WorkerCrashed` (retries exhausted), :class:`WorkerTimeout`
(hard deadline tripped, worker killed), or :class:`Preempted` (the
admission layer reclaimed the worker for higher-priority work; the
server re-enqueues the request).

Workers inherit the warm in-process charlib memo on platforms with
``fork`` and hold their own :class:`~repro.service.cache.HotCache` of
built contexts, so a long-lived worker answers repeat configurations
as fast as the threaded path.  Fault injection for the chaos harness
rides in the spec (``fleet_fault``): a scheduled crash hard-kills the
worker with ``os._exit`` before the compute starts, exactly like an
OOM kill.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import stat
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import obs
from repro.obs import metrics as obs_metrics
from repro.obs.aggregate import RegistryShipper, merge_shard_telemetry
from repro.resilience.errors import ConfigError, ResilienceError
from repro.service.cache import HotCache
from repro.service.protocol import (
    ProtocolError,
    error_frame,
    partial_frame,
    result_frame,
)
from repro.service.requests import (
    AnalysisRequest,
    build_context,
    execute_analysis,
    execute_size,
    execute_verify,
)

_log = obs.get_logger("repro.service")

#: Fields a ``fleet_fault`` request param may carry (chaos harness
#: only; attempt numbers are zero-based and continuous across retries
#: and re-admissions, so ``{"crash_attempts": [0]}`` kills the first
#: try and lets the retry succeed).
FLEET_FAULT_FIELDS = ("crash_attempts", "crash_exit_code",
                      "hang_attempts", "hang_s")


class FleetError(Exception):
    """Infrastructure failure of a fleet task (not a request error)."""


class WorkerCrashed(FleetError):
    """Every retry of a task died with its worker."""


class WorkerTimeout(FleetError):
    """The task's hard wall deadline tripped; its worker was killed."""


class Preempted(FleetError):
    """The worker was reclaimed for higher-priority work; the request
    should be re-enqueued (it lost its partial progress, nothing
    else)."""


# ---------------------------------------------------------------------------
# The shared execution function (byte identity by construction)


def _numeric_snapshot() -> Dict[str, float]:
    return {key: value for key, value in obs_metrics.snapshot().items()
            if isinstance(value, (int, float))}


def _numeric_delta(before: Dict[str, float]) -> Dict[str, float]:
    after = _numeric_snapshot()
    return {key: value - before.get(key, 0)
            for key, value in after.items()
            if value != before.get(key, 0)}


def run_work(spec: Dict[str, Any], contexts: HotCache) -> List[Dict[str, Any]]:
    """Execute one work spec against a context cache; return the
    response frames (``partial``* then a terminal ``result``/``error``).

    Request-level failures are rendered to error frames *here*, so the
    threaded pool and the worker pipe both carry plain frame lists --
    the acceptor never needs to distinguish where the work ran.
    """
    try:
        op = spec["op"]
        if op == "analyze":
            return _run_analyze(spec, contexts)
        if op == "verify":
            outcome = execute_verify(**spec["params"])
            return [result_frame(None, op="verify", report=outcome.report,
                                 ok=outcome.ok)]
        if op == "size":
            outcome = execute_size(**spec["params"])
            return [result_frame(None, op="size", report=outcome.report,
                                 **outcome.payload)]
        return [error_frame(None, "bad-request",
                            f"op {op!r} not dispatchable")]
    except ProtocolError as exc:
        return [error_frame(None, exc.code, str(exc))]
    except ConfigError as exc:
        return [error_frame(None, "bad-request", str(exc))]
    except ResilienceError as exc:
        return [error_frame(None, "internal", str(exc))]
    except Exception as exc:  # never let a request take the worker down
        _log.warning("service.request_error", op=spec.get("op"),
                     error=f"{type(exc).__name__}: {exc}")
        return [error_frame(None, "internal",
                            f"{type(exc).__name__}: {exc}")]


def _run_analyze(spec: Dict[str, Any],
                 contexts: HotCache) -> List[Dict[str, Any]]:
    request = AnalysisRequest(**spec["request"])
    fault_plan = spec.get("fault")
    context = contexts.get_or_build(
        request.context_key(), lambda: build_context(request))
    with context.lock:
        before = _numeric_snapshot()
        started = time.monotonic()
        outcome = execute_analysis(request, context=context,
                                   fault_plan=fault_plan)
        elapsed = time.monotonic() - started
        delta = _numeric_delta(before)
    fields: Dict[str, Any] = {
        "op": "analyze",
        "report": outcome.report,
        "paths": len(outcome.paths),
        "degraded": outcome.degraded,
        "cached": False,
        "elapsed_s": round(elapsed, 6),
        "metrics": delta,
    }
    frames: List[Dict[str, Any]] = []
    if outcome.degraded and outcome.completeness is not None:
        completeness = [o.as_dict() for o in
                        outcome.completeness.origins.values()]
        fields["completeness"] = completeness
        frames.append(partial_frame(None, completeness))
    frames.append(result_frame(None, **fields))
    return frames


# ---------------------------------------------------------------------------
# In-process fallback (--fleet 0)


class ThreadedExecutor:
    """The deterministic in-process executor: ``run_work`` on a thread
    pool against the server's own context cache.  No isolation -- a
    worker segfault is a daemon segfault -- but zero IPC overhead and
    bit-for-bit the PR 9 behavior."""

    def __init__(self, width: int, contexts: HotCache):
        self.width = width
        self._contexts = contexts
        self._pool = ThreadPoolExecutor(
            max_workers=width, thread_name_prefix="repro-service")

    def submit(self, spec: Dict[str, Any], attempt: int = 0) -> Future:
        return self._pool.submit(run_work, spec, self._contexts)

    def preemptible(self) -> bool:
        return False

    def preempt_one(self) -> bool:
        return False

    def stats(self) -> Dict[str, Any]:
        return {"mode": "threaded", "width": self.width}

    def shutdown(self) -> None:
        self._pool.shutdown(wait=False)


# ---------------------------------------------------------------------------
# Worker fleet


def _close_inherited_sockets(keep_fd: int) -> None:
    """Close socket fds a forked worker inherited from the acceptor.

    A worker holding a duplicate of a client connection (or the listen
    socket) keeps that peer's EOF from ever reaching the acceptor, so
    disconnects would hang until the worker died.  The task pipe
    (``keep_fd``) is itself a socketpair and is preserved; non-socket
    fds (log files, the multiprocessing resource tracker) are left
    alone.
    """
    try:
        fds = [int(name) for name in os.listdir("/proc/self/fd")]
    except (OSError, ValueError):  # pragma: no cover - non-Linux
        return
    for fd in fds:
        if fd <= 2 or fd == keep_fd:
            continue
        try:
            if stat.S_ISSOCK(os.fstat(fd).st_mode):
                os.close(fd)
        except OSError:
            continue


def _worker_main(conn, cache_size: int) -> None:
    """Long-lived worker loop: recv a (spec, attempt) task, run it
    against a worker-local context cache, send the frames back.

    Exits on pipe EOF (parent died or shut the fleet down) so orphaned
    workers cannot outlive the daemon.  Each answer ships the worker's
    registry *delta* (:class:`~repro.obs.aggregate.RegistryShipper`, the
    PR 6 shard idiom) so the acceptor's metrics still see fleet work.
    """
    _close_inherited_sockets(conn.fileno())
    contexts = HotCache(cache_size, name="worker_cache")
    shipper = RegistryShipper()
    shipper.collect("__init__")  # absorb fork-inherited registry state
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if message is None:
            break
        spec, attempt = message
        fault = spec.get("fleet_fault") or {}
        if attempt in tuple(fault.get("crash_attempts", ())):
            # Hard death before any compute: skips every finally/atexit,
            # exactly like an OOM kill of the worker.
            os._exit(int(fault.get("crash_exit_code", 23)))
        if attempt in tuple(fault.get("hang_attempts", ())):
            time.sleep(float(fault.get("hang_s", 30.0)))
        frames = run_work(spec, contexts)
        telemetry = shipper.collect(f"fleet-pid{os.getpid()}")
        try:
            conn.send((frames, telemetry))
        except (BrokenPipeError, OSError):
            break


def _fork_context():
    """Prefer ``fork`` (workers inherit the warm charlib memo and start
    in milliseconds); fall back to the platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


@dataclass
class _Task:
    spec: Dict[str, Any]
    attempt: int
    future: Future = field(default_factory=Future)


_STOP = object()

#: Supervision poll period (matches the resilience supervisor).
_POLL_SECONDS = 0.05


class _WorkerSlot:
    """One worker process plus its parent-side supervising thread."""

    def __init__(self, fleet: "WorkerFleet", index: int):
        self.fleet = fleet
        self.index = index
        self.process = None
        self.conn = None
        #: The task currently executing in this slot's worker (read by
        #: the preemption scan; plain attribute, GIL-consistent).
        self.current: Optional[_Task] = None
        self.preempt_requested = False
        self.thread = threading.Thread(
            target=self._run, daemon=True,
            name=f"repro-fleet-supervisor-{index}")
        self.thread.start()

    # -- worker lifecycle --------------------------------------------------

    def _spawn(self) -> None:
        ctx = _fork_context()
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_worker_main,
            args=(child_conn, self.fleet.cache_size),
            name=f"repro-fleet-worker-{self.index}",
        )
        process.start()
        child_conn.close()
        self.process, self.conn = process, parent_conn
        obs.counter("service.worker_respawns").inc()
        _log.info("fleet.worker_spawned", slot=self.index,
                  pid=process.pid)

    def _ensure_worker(self) -> None:
        if self.process is None or not self.process.is_alive():
            self._kill_worker()
            self._spawn()

    def _kill_worker(self) -> None:
        process, conn = self.process, self.conn
        self.process = self.conn = None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if process is not None and process.is_alive():
            process.terminate()
            process.join(2.0)
            if process.is_alive():
                process.kill()
                process.join(2.0)

    # -- task execution ----------------------------------------------------

    def _run(self) -> None:
        while True:
            task = self.fleet._tasks.get()
            if task is _STOP:
                break
            try:
                self._execute(task)
            except Exception as exc:  # supervision must never die
                if not task.future.done():
                    task.future.set_exception(exc)
        self._kill_worker()

    def _execute(self, task: _Task) -> None:
        attempt = task.attempt
        while True:
            if self.fleet._stopping:
                task.future.set_exception(
                    WorkerCrashed("fleet is shutting down"))
                return
            self._ensure_worker()
            self.preempt_requested = False
            self.current = task
            started = time.monotonic()
            timeout_s = task.spec.get("timeout_s")
            try:
                self.conn.send((task.spec, attempt))
                status, payload = self._supervise(started, timeout_s)
            except (BrokenPipeError, OSError, EOFError):
                status, payload = "crashed", None
            finally:
                self.current = None
            if status == "ok":
                frames, telemetry = payload
                merge_shard_telemetry(telemetry)
                task.future.set_result(frames)
                return
            if status == "preempted":
                self._kill_worker()
                if self.fleet._stopping:
                    # Shutdown reuses the preemption signal to unblock
                    # a supervisor stuck on a hung worker.
                    task.future.set_exception(
                        WorkerCrashed("fleet is shutting down"))
                    return
                obs.counter("service.preemptions").inc()
                _log.info("fleet.preempted", slot=self.index,
                          attempt=attempt)
                task.future.set_exception(Preempted(
                    f"worker {self.index} reclaimed for higher-priority "
                    f"work (attempt {attempt})"))
                return
            if status == "timeout":
                obs.counter("service.worker_timeouts").inc()
                _log.warning("fleet.worker_timeout", slot=self.index,
                             attempt=attempt, timeout_s=timeout_s)
                self._kill_worker()
                task.future.set_exception(WorkerTimeout(
                    f"request exceeded its {timeout_s:g}s hard wall "
                    f"deadline; worker killed (attempt {attempt})"))
                return
            # Crashed: the worker died under the request (segfault, OOM
            # kill, injected os._exit).  Bounded retry with backoff.
            obs.counter("service.worker_crashes").inc()
            exitcode = self.process.exitcode if self.process else None
            _log.warning("fleet.worker_crashed", slot=self.index,
                         attempt=attempt, exitcode=exitcode)
            self._kill_worker()
            attempt += 1
            if attempt > task.attempt + self.fleet.retries:
                task.future.set_exception(WorkerCrashed(
                    f"request killed its worker on "
                    f"{self.fleet.retries + 1} consecutive attempts "
                    f"(last exit code {exitcode})"))
                return
            obs.counter("service.request_retries").inc()
            delay = self.fleet.retry_backoff * (
                2 ** (attempt - task.attempt - 1))
            time.sleep(min(delay, 2.0))

    def _supervise(self, started: float, timeout_s: Optional[float]):
        """Poll the worker until it answers, dies, hangs past its
        deadline, or is preempted."""
        while True:
            if self.conn.poll(_POLL_SECONDS):
                try:
                    return "ok", self.conn.recv()
                except (EOFError, OSError):
                    return "crashed", None
            if self.process is None or not self.process.is_alive():
                return "crashed", None
            if self.preempt_requested:
                return "preempted", None
            if timeout_s is not None and \
                    time.monotonic() - started > timeout_s:
                return "timeout", None


class WorkerFleet:
    """N supervised worker processes sharing one task queue.

    ``submit`` returns a :class:`concurrent.futures.Future` resolving
    to the response frames, or raising :class:`WorkerCrashed` /
    :class:`WorkerTimeout` / :class:`Preempted` -- see the module
    docstring for the contract.
    """

    def __init__(self, size: int, cache_size: int = 8,
                 retries: int = 2, retry_backoff: float = 0.1):
        if size < 1:
            raise ValueError(f"fleet needs >= 1 worker, got {size}")
        self.size = size
        self.cache_size = cache_size
        self.retries = retries
        self.retry_backoff = retry_backoff
        self._stopping = False
        self._tasks: "queue.Queue" = queue.Queue()
        self._slots = [_WorkerSlot(self, i) for i in range(size)]

    @property
    def width(self) -> int:
        return self.size

    def submit(self, spec: Dict[str, Any], attempt: int = 0) -> Future:
        task = _Task(spec=spec, attempt=attempt)
        if self._stopping:
            task.future.set_exception(
                WorkerCrashed("fleet is shutting down"))
            return task.future
        self._tasks.put(task)
        return task.future

    def preemptible(self) -> bool:
        return True

    def preempt_one(self) -> bool:
        """Reclaim one worker running a preemptible hog (an uncapped
        ``exhaustive`` request); returns whether a preemption was
        requested."""
        for slot in self._slots:
            task = slot.current
            if (task is not None and task.spec.get("hog")
                    and not slot.preempt_requested):
                slot.preempt_requested = True
                return True
        return False

    def stats(self) -> Dict[str, Any]:
        return {
            "mode": "fleet",
            "width": self.size,
            "workers_alive": sum(
                1 for s in self._slots
                if s.process is not None and s.process.is_alive()),
            "busy": sum(1 for s in self._slots if s.current is not None),
            "crashes": obs.counter("service.worker_crashes").value,
            "retries": obs.counter("service.request_retries").value,
            "preemptions": obs.counter("service.preemptions").value,
        }

    def shutdown(self) -> None:
        self._stopping = True
        for slot in self._slots:
            # Busy supervisors notice within one poll period instead of
            # waiting out a hung (or long) request.
            slot.preempt_requested = True
        for _ in self._slots:
            self._tasks.put(_STOP)
        for slot in self._slots:
            slot.thread.join(5.0)
            slot._kill_worker()
