"""Wire protocol of the analysis service: length-prefixed JSON frames.

A frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  Both directions use the same framing; one request
may produce *several* response frames (heartbeats, a partial-result
notice, then the final result or a structured error), correlated by the
request ``id``.

Request shape::

    {"v": 1, "id": "r1", "op": "analyze", "params": {...},
     "deadline_s": 2.5, "effort": "medium"}

Response frames carry ``kind``:

``result``
    Terminal success; payload fields depend on the op.
``error``
    Terminal failure with a stable ``code`` (:data:`ERROR_CODES`) and a
    human ``message``.  Protocol-level errors (``bad-json``,
    ``bad-request``, ``version-mismatch``) keep the connection open --
    the framing is still intact; only ``oversized-frame`` closes it,
    because the declared body cannot safely be drained.
``heartbeat``
    Liveness beat while a request computes (``elapsed_s``, ``state``).
``partial``
    Anytime notice preceding a degraded ``result``: per-origin
    completeness statuses with sound GBA upper bounds.

Malformed input never crashes the server: every failure mode maps to a
structured ``error`` frame (or, for a frame truncated by disconnect, a
counted early EOF).  See ``docs/SERVICE.md`` for the full contract.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional, Tuple

#: Protocol version; bumped on any incompatible frame/schema change.
PROTOCOL_VERSION = 1

#: Frame header: 4-byte big-endian unsigned payload length.
HEADER = struct.Struct("!I")

#: Default refusal threshold for a single frame (either direction).
MAX_FRAME_BYTES = 32 << 20

#: Operations the server dispatches.
OPS = ("analyze", "verify", "size", "stats", "ping", "shutdown")

#: Stable error codes carried by ``kind="error"`` frames.
ERROR_CODES = (
    "oversized-frame",   # declared length beyond the server's limit
    "bad-json",          # body is not valid UTF-8 JSON / not an object
    "bad-request",       # missing/invalid id, op, or params
    "version-mismatch",  # client protocol version != server's
    "deadline-exceeded", # QoS deadline expired before the search began
    "unavailable",       # server is shutting down / refusing work
    "overloaded",        # admission queue full; retry_after_s attached
    "internal",          # request execution raised; message has detail
)


class ProtocolError(Exception):
    """A violation of the framing or message schema.

    ``code`` is one of :data:`ERROR_CODES`; ``fatal`` marks errors
    after which the connection cannot be safely reused.
    """

    code = "bad-request"
    fatal = False

    def __init__(self, message: str, request_id: Any = None):
        super().__init__(message)
        self.request_id = request_id


class FrameTooLarge(ProtocolError):
    code = "oversized-frame"
    fatal = True


class TruncatedFrame(ProtocolError):
    """Peer disconnected mid-frame (EOF before the declared length)."""

    code = "bad-request"
    fatal = True


class BadJson(ProtocolError):
    code = "bad-json"


class BadRequest(ProtocolError):
    code = "bad-request"


class VersionMismatch(ProtocolError):
    code = "version-mismatch"


# ---------------------------------------------------------------------------
# Encoding


def encode_payload(payload: Dict[str, Any]) -> bytes:
    """Canonical JSON body: sorted keys, no whitespace -- so identical
    payloads are identical bytes (the fingerprint/byte-identity tests
    rely on this)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def encode_frame(payload: Dict[str, Any],
                 max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    body = encode_payload(payload)
    if len(body) > max_bytes:
        raise FrameTooLarge(
            f"frame of {len(body)} bytes exceeds limit {max_bytes}")
    return HEADER.pack(len(body)) + body


def decode_payload(body: bytes) -> Dict[str, Any]:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadJson(f"frame body is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        raise BadJson(
            f"frame body must be a JSON object, got {type(payload).__name__}")
    return payload


# ---------------------------------------------------------------------------
# Async reading (server side)


async def read_frame(
    reader: "asyncio.StreamReader",
    max_bytes: int = MAX_FRAME_BYTES,
) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`TruncatedFrame` on EOF mid-frame, :class:`FrameTooLarge`
    for a declared length beyond ``max_bytes`` (without reading the
    body), and :class:`BadJson` for an undecodable body.
    """
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TruncatedFrame(
            f"connection closed {len(exc.partial)} bytes into a header")
    (length,) = HEADER.unpack(header)
    if length > max_bytes:
        raise FrameTooLarge(
            f"declared frame length {length} exceeds limit {max_bytes}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TruncatedFrame(
            f"connection closed {len(exc.partial)}/{length} bytes into "
            "a frame body")
    return decode_payload(body)


# ---------------------------------------------------------------------------
# Request validation


def validate_request(
    payload: Dict[str, Any],
) -> Tuple[Any, str, Dict[str, Any], Optional[float], Optional[str]]:
    """Check the request envelope; returns
    ``(id, op, params, deadline_s, effort)``.

    Raises :class:`VersionMismatch` or :class:`BadRequest` with the
    request ``id`` attached when one was readable, so the error frame
    can be correlated client-side.
    """
    request_id = payload.get("id")
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise VersionMismatch(
            f"client protocol version {version!r}, server speaks "
            f"{PROTOCOL_VERSION}", request_id=request_id)
    if request_id is None or not isinstance(request_id, (str, int)):
        raise BadRequest("request is missing a string/int 'id'",
                         request_id=None)
    op = payload.get("op")
    if op not in OPS:
        raise BadRequest(f"unknown op {op!r}; have {', '.join(OPS)}",
                         request_id=request_id)
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise BadRequest("'params' must be a JSON object",
                         request_id=request_id)
    deadline_s = payload.get("deadline_s")
    if deadline_s is not None and (
            not isinstance(deadline_s, (int, float)) or deadline_s <= 0):
        raise BadRequest("'deadline_s' must be a positive number",
                         request_id=request_id)
    effort = payload.get("effort")
    if effort is not None and not isinstance(effort, str):
        raise BadRequest("'effort' must be a string",
                         request_id=request_id)
    return request_id, op, params, deadline_s, effort


# ---------------------------------------------------------------------------
# Response constructors


def request_frame(
    request_id: Any,
    op: str,
    params: Optional[Dict[str, Any]] = None,
    deadline_s: Optional[float] = None,
    effort: Optional[str] = None,
) -> Dict[str, Any]:
    frame: Dict[str, Any] = {
        "v": PROTOCOL_VERSION, "id": request_id, "op": op,
        "params": params or {},
    }
    if deadline_s is not None:
        frame["deadline_s"] = deadline_s
    if effort is not None:
        frame["effort"] = effort
    return frame


def result_frame(request_id: Any, **fields: Any) -> Dict[str, Any]:
    return {"kind": "result", "id": request_id, **fields}


def error_frame(request_id: Any, code: str, message: str,
                **fields: Any) -> Dict[str, Any]:
    """``fields`` carries structured extras next to the human message --
    e.g. ``retry_after_s`` on an ``overloaded`` rejection."""
    assert code in ERROR_CODES, code
    return {"kind": "error", "id": request_id, "code": code,
            "message": message, "v": PROTOCOL_VERSION, **fields}


def heartbeat_frame(request_id: Any, elapsed_s: float,
                    state: str = "running",
                    **fields: Any) -> Dict[str, Any]:
    """A queued request beats with ``state="queued"``, ``queued=True``
    and its 1-based queue ``position``, so a client can distinguish
    "waiting for a worker" from "dead server"."""
    return {"kind": "heartbeat", "id": request_id,
            "elapsed_s": round(elapsed_s, 3), "state": state, **fields}


def partial_frame(request_id: Any, completeness: list) -> Dict[str, Any]:
    return {"kind": "partial", "id": request_id,
            "completeness": completeness}
