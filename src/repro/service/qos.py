"""Request QoS: mapping ``deadline_s``/``effort`` onto search budgets.

The service does not invent a new throttling mechanism -- it translates
the two client-facing QoS knobs onto the :class:`SearchBudgets` axes the
resilience layer already enforces (and whose degraded results carry
sound GBA bounds):

``deadline_s``
    Wall-clock promise for the *whole* request, measured from arrival.
    The time already burned in the queue is subtracted before the search
    starts; what remains becomes ``SearchBudgets.wall_seconds``.  A
    deadline that expires before the search begins is refused up front
    with a ``deadline-exceeded`` error rather than burning a worker slot
    on a doomed request.

``effort``
    A named extension-budget tier (:data:`EFFORT_BUDGETS`).  Unlike the
    deadline it is deterministic -- the same effort always explores the
    same extensions -- so effort-limited results are cacheable and
    byte-reproducible while deadline-limited ones are not.

Both merge with any explicit ``*_budget`` params by taking the tightest
cap per axis; explicit budgets thus can only tighten a QoS tier, never
widen it.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.resilience.budgets import SearchBudgets
from repro.service.protocol import BadRequest, ProtocolError

#: Named effort tiers -> extension budget.  ``exhaustive`` (and an
#: absent ``effort``) imposes no cap: the search runs to completion.
EFFORT_BUDGETS = {
    "low": 10_000,
    "medium": 50_000,
    "high": 200_000,
    "exhaustive": None,
}


class DeadlineExceeded(ProtocolError):
    """The request's deadline expired before its search could start."""

    code = "deadline-exceeded"


def resolve_budgets(
    base: Optional[SearchBudgets],
    deadline_s: Optional[float],
    effort: Optional[str],
    queued_at: Optional[float] = None,
    now: Optional[float] = None,
) -> Optional[SearchBudgets]:
    """Merge the request's explicit budgets with its QoS knobs.

    ``queued_at`` is when the request arrived (``time.monotonic``); the
    wait already spent in the queue counts against the deadline.
    """
    if effort is not None and effort not in EFFORT_BUDGETS:
        raise BadRequest(
            f"unknown effort {effort!r}; have "
            f"{', '.join(sorted(EFFORT_BUDGETS))}")
    wall = base.wall_seconds if base else None
    extensions = base.max_extensions if base else None
    backtracks = base.max_backtracks if base else None
    if deadline_s is not None:
        now = time.monotonic() if now is None else now
        remaining = deadline_s - (now - queued_at if queued_at else 0.0)
        if remaining <= 0:
            raise DeadlineExceeded(
                f"deadline of {deadline_s:g}s expired after "
                f"{now - queued_at:.3f}s in queue")
        wall = remaining if wall is None else min(wall, remaining)
    tier = EFFORT_BUDGETS.get(effort) if effort else None
    if tier is not None:
        extensions = tier if extensions is None else min(extensions, tier)
    budgets = SearchBudgets(
        wall_seconds=wall,
        max_extensions=extensions,
        max_backtracks=backtracks,
    )
    return budgets if budgets.bounded() else None
