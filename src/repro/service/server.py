"""The analysis daemon: asyncio acceptor over supervised compute.

One :class:`AnalysisServer` owns

* a :class:`~repro.service.cache.HotCache` of built
  :class:`~repro.service.requests.AnalysisContext` objects (circuit +
  charlib + compiled session) keyed by context fingerprint,
* a :class:`~repro.service.cache.ResultMemo` of rendered outcomes for
  deterministic request repeats (checked in the acceptor, so memo hits
  bypass admission entirely),
* an **executor**: the in-process
  :class:`~repro.service.fleet.ThreadedExecutor` at ``fleet=0`` or a
  supervised :class:`~repro.service.fleet.WorkerFleet` of N worker
  processes (a worker segfault/OOM/hang kills one request attempt, not
  the daemon),
* an :class:`~repro.service.admission.AdmissionController`: a bounded
  EDF/effort priority queue with load shedding (``overloaded`` +
  ``retry_after_s``), queue-wait heartbeats (``queued: true`` with the
  1-based position), deadline expiry before dispatch, and hog
  preemption in fleet mode,
* optionally a :class:`~repro.service.persistence.WarmStateStore`
  snapshotting the memo + hot-context keys periodically and on drain,
  re-warming on boot (corrupt snapshots are discarded, never trusted).

Request lifecycle: frame decoded -> envelope validated -> spec built
(QoS effort applied; fingerprint/memo check) -> **admitted** (or shed)
-> heartbeats with ``state="queued"`` while waiting -> on grant, the
deadline's queue wait is charged (:func:`repro.service.qos
.resolve_budgets`) -> the spec executes via
:func:`repro.service.fleet.run_work` -- *the same function in both
executor modes and the same compute code as the one-shot CLI*, which is
what makes served reports byte-identical everywhere -> heartbeats with
``state="running"`` -> ``partial`` frame for degraded results -> the
terminal ``result``/``error`` frame.

Shutdown: :meth:`AnalysisServer.begin_drain` (the wire ``shutdown`` op
and SIGTERM both route here) stops admitting compute, finishes
in-flight work, snapshots warm state, and exits; ``request_stop`` /
:meth:`ServerHandle.kill` is the immediate path (tests and the chaos
harness's simulated crash).
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.resilience.errors import ConfigError
from repro.service.admission import AdmissionController, Overloaded, Ticket
from repro.service.cache import HotCache, ResultMemo
from repro.service.fleet import (
    FLEET_FAULT_FIELDS,
    Preempted,
    ThreadedExecutor,
    WorkerCrashed,
    WorkerFleet,
    WorkerTimeout,
)
from repro.service.persistence import WarmStateStore
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    BadRequest,
    ProtocolError,
    TruncatedFrame,
    encode_frame,
    error_frame,
    heartbeat_frame,
    read_frame,
    result_frame,
    validate_request,
)
from repro.service.qos import resolve_budgets
from repro.service.requests import (
    AnalysisRequest,
    build_context,
    execute_size,
)

_log = obs.get_logger("repro.service")


@dataclass
class ServiceConfig:
    host: str = "127.0.0.1"
    #: 0 = let the OS pick (the bound port is on the server/handle).
    port: int = 0
    #: LRU capacity for built analysis contexts.
    cache_size: int = 8
    #: LRU capacity for memoized deterministic results.
    result_cache_size: int = 64
    #: Compute width of the in-process executor (``fleet=0``).
    max_concurrent: int = 4
    #: Seconds between liveness beats (queued and running states).
    heartbeat_interval: float = 5.0
    #: Honor the ``fault`` request param (test/CI harnesses only).
    allow_fault_injection: bool = False
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: Worker processes; 0 = deterministic in-process thread pool.
    fleet: int = 0
    #: Admission slots; default = executor width.
    max_inflight: Optional[int] = None
    #: Waiting tickets beyond which new arrivals are shed.
    max_queue: int = 32
    #: Crash retries per request before giving up (fleet mode).
    request_retries: int = 2
    #: Base of the crash-retry exponential backoff, seconds.
    retry_backoff: float = 0.1
    #: Queue wait after which a deadline-bearing ticket may trigger a
    #: hog preemption (fleet mode only).
    preempt_after_s: float = 2.0
    #: Warm-state snapshot file; None disables persistence.
    snapshot_path: Optional[str] = None
    #: Seconds between periodic snapshots.
    snapshot_interval_s: float = 30.0
    #: Discard snapshots older than this on boot; None = no horizon.
    snapshot_max_age_s: Optional[float] = None
    #: Ceiling on how long a drain waits for in-flight work.
    drain_timeout_s: float = 60.0


@dataclass
class ServerHandle:
    """A server running in a daemon thread (tests, benchmarks, CLI)."""

    server: "AnalysisServer"
    thread: threading.Thread

    @property
    def host(self) -> str:
        return self.server.config.host

    @property
    def port(self) -> int:
        assert self.server.port is not None, "server not bound yet"
        return self.server.port

    def stop(self, timeout: float = 30.0) -> None:
        self.server.request_stop()
        self.thread.join(timeout)

    def kill(self, timeout: float = 30.0) -> None:
        """Simulated crash: stop *without* the exit snapshot, so a
        restart exercises whatever the last periodic snapshot saved."""
        self.server.skip_final_snapshot = True
        self.server.request_stop()
        self.thread.join(timeout)

    def drain(self, timeout: float = 60.0) -> None:
        """Graceful: finish in-flight, refuse new, snapshot, stop."""
        self.server.begin_drain()
        self.thread.join(timeout)


@dataclass
class _PendingCompute:
    """A validated compute request, ready for admission/dispatch."""

    op: str
    spec: Dict[str, Any]
    request: Optional[AnalysisRequest] = None  # analyze only
    memoizable: bool = False
    fingerprint: Optional[str] = None
    hog: bool = False


class AnalysisServer:
    """See the module docstring; construct, then :meth:`run` (blocking)
    or :func:`start_in_thread`."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.port: Optional[int] = None
        self.contexts = HotCache(self.config.cache_size, name="cache")
        self.results = ResultMemo(self.config.result_cache_size)
        if self.config.fleet > 0:
            self.executor = WorkerFleet(
                self.config.fleet,
                cache_size=self.config.cache_size,
                retries=self.config.request_retries,
                retry_backoff=self.config.retry_backoff)
        else:
            self.executor = ThreadedExecutor(
                self.config.max_concurrent, self.contexts)
        self.store: Optional[WarmStateStore] = None
        if self.config.snapshot_path:
            self.store = WarmStateStore(
                self.config.snapshot_path,
                max_age_s=self.config.snapshot_max_age_s)
        self.skip_final_snapshot = False
        self._admission: Optional[AdmissionController] = None
        self._started_at = time.monotonic()
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_async: Optional[asyncio.Event] = None
        self._draining = False
        self._requests_lock = threading.Lock()
        self._requests: Dict[str, int] = {}
        self._failed = 0
        self._client_tasks: set = set()

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> None:
        """Serve until :meth:`request_stop` (blocking; owns the loop)."""
        asyncio.run(self._serve())

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_async = asyncio.Event()
        width = self.executor.width
        max_inflight = self.config.max_inflight or width
        self._admission = AdmissionController(
            max_inflight=max_inflight, max_queue=self.config.max_queue)
        self._restore_warm_state()
        server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port)
        self.port = server.sockets[0].getsockname()[1]
        _log.info("service.listening", host=self.config.host,
                  port=self.port, fleet=self.config.fleet,
                  max_inflight=max_inflight,
                  max_queue=self.config.max_queue)
        self._ready.set()
        snapshotter = None
        if self.store is not None:
            snapshotter = asyncio.ensure_future(self._snapshot_loop())
        try:
            await self._stop_async.wait()
        finally:
            server.close()
            await server.wait_closed()
            if snapshotter is not None:
                snapshotter.cancel()
            # Drain live connection handlers instead of letting
            # asyncio.run() cancel them un-awaited (which logs a noisy
            # CancelledError per connection on shutdown).
            live = [t for t in self._client_tasks if not t.done()]
            if live:
                _, pending = await asyncio.wait(live, timeout=2.0)
                for task in pending:
                    task.cancel()
                if pending:
                    await asyncio.gather(*pending, return_exceptions=True)
            if self.store is not None and not self.skip_final_snapshot:
                self.snapshot_now()
            self.executor.shutdown()
            _log.info("service.stopped", port=self.port)

    def wait_ready(self, timeout: float = 60.0) -> None:
        if not self._ready.wait(timeout):
            raise TimeoutError("service did not come up in time")

    def request_stop(self) -> None:
        """Thread-safe *immediate* shutdown trigger."""
        loop, stop = self._loop, self._stop_async
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)

    def begin_drain(self) -> None:
        """Thread-safe graceful shutdown: refuse new compute with
        ``unavailable``, finish in-flight work, snapshot warm state,
        then stop.  The wire ``shutdown`` op and SIGTERM route here."""
        loop = self._loop
        if loop is not None:
            loop.call_soon_threadsafe(self._begin_drain_local)

    def _begin_drain_local(self) -> None:
        if self._draining:
            return
        self._draining = True
        _log.info("service.draining", port=self.port)
        asyncio.ensure_future(self._drain_and_stop())

    async def _drain_and_stop(self) -> None:
        assert self._admission is not None and self._stop_async is not None
        drained = await self._admission.quiesce(
            timeout=self.config.drain_timeout_s)
        if not drained:
            _log.warning("service.drain_timeout",
                         timeout_s=self.config.drain_timeout_s)
        self._stop_async.set()

    # -- warm-state persistence --------------------------------------------

    def _restore_warm_state(self) -> None:
        if self.store is None:
            return
        state = self.store.load()
        if state is None:
            return
        restored = self.results.restore(state["memo"])
        _log.info("service.rewarmed", memo_entries=restored,
                  context_keys=len(state["contexts"]))
        if self.config.fleet == 0 and state["contexts"]:
            # Rebuild hot contexts in the background (threaded mode
            # computes against the acceptor's cache; fleet workers own
            # theirs).  Best effort: a key that no longer builds is
            # skipped, never fatal.
            keys = list(state["contexts"])[-self.config.cache_size:]
            threading.Thread(target=self._rewarm_contexts, args=(keys,),
                             daemon=True,
                             name="repro-service-rewarm").start()

    def _rewarm_contexts(self, keys: List[Tuple]) -> None:
        for key in keys:
            try:
                kind, netlist, no_map, tech, tool, policy, vectorize = key
                if kind != "analyze":
                    continue
                request = AnalysisRequest(
                    netlist=netlist, no_map=bool(no_map), tech=tech,
                    tool=tool, missing_arc_policy=policy,
                    vectorize=bool(vectorize))
                self.contexts.get_or_build(
                    request.context_key(), lambda: build_context(request))
            except Exception as exc:
                _log.warning("service.rewarm_failed", key=repr(key),
                             error=f"{type(exc).__name__}: {exc}")

    def snapshot_now(self) -> None:
        """Write a warm-state snapshot (no-op without a store)."""
        if self.store is None:
            return
        try:
            self.store.save(self.results.items(), self.contexts.keys())
        except OSError as exc:
            _log.warning("service.snapshot_failed",
                         error=f"{type(exc).__name__}: {exc}")

    async def _snapshot_loop(self) -> None:
        try:
            while True:
                await asyncio.sleep(self.config.snapshot_interval_s)
                self.snapshot_now()
        except asyncio.CancelledError:
            pass

    # -- bookkeeping -------------------------------------------------------

    def _count(self, op: str) -> None:
        obs.counter("service.requests").inc()
        obs.counter("service.requests_by_op", op=op).inc()
        with self._requests_lock:
            self._requests[op] = self._requests.get(op, 0) + 1

    def _count_failure(self) -> None:
        obs.counter("service.requests_failed").inc()
        with self._requests_lock:
            self._failed += 1

    def stats_payload(self) -> Dict[str, Any]:
        with self._requests_lock:
            by_op = dict(self._requests)
            failed = self._failed
        return {
            "protocol_version": PROTOCOL_VERSION,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "requests": {
                "total": sum(by_op.values()),
                "by_op": by_op,
                "failed": failed,
            },
            "contexts": self.contexts.stats(),
            "results": self.results.stats(),
            "executor": self.executor.stats(),
            "admission": (self._admission.stats()
                          if self._admission is not None else None),
            "draining": self._draining,
            "metrics": obs.snapshot(),
        }

    # -- connection handling ----------------------------------------------

    async def _send(self, writer: asyncio.StreamWriter,
                    payload: Dict[str, Any]) -> None:
        writer.write(encode_frame(payload, self.config.max_frame_bytes))
        await writer.drain()

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        obs.counter("service.connections").inc()
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
            task.add_done_callback(self._client_tasks.discard)
        try:
            while True:
                try:
                    payload = await read_frame(
                        reader, self.config.max_frame_bytes)
                except TruncatedFrame:
                    # Peer vanished mid-frame; nothing to answer to.
                    obs.counter("service.truncated_frames").inc()
                    break
                except ProtocolError as exc:
                    obs.counter("service.protocol_errors").inc()
                    await self._send(writer, error_frame(
                        exc.request_id, exc.code, str(exc)))
                    if exc.fatal:
                        break
                    continue
                if payload is None:
                    break  # clean EOF at a frame boundary
                try:
                    request_id, op, params, deadline_s, effort = \
                        validate_request(payload)
                except ProtocolError as exc:
                    obs.counter("service.protocol_errors").inc()
                    await self._send(writer, error_frame(
                        exc.request_id, exc.code, str(exc)))
                    continue
                await self._process(writer, request_id, op, params,
                                    deadline_s, effort)
                if op == "shutdown":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # peer went away; the server keeps serving others
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # -- request processing ------------------------------------------------

    async def _process(self, writer: asyncio.StreamWriter, request_id: Any,
                       op: str, params: Dict[str, Any],
                       deadline_s: Optional[float],
                       effort: Optional[str]) -> None:
        arrived_at = time.monotonic()
        self._count(op)
        with obs.span(f"service.request.{op}"):
            if op == "ping":
                await self._send(writer, result_frame(
                    request_id, op="ping", pong=True,
                    draining=self._draining,
                    uptime_s=round(arrived_at - self._started_at, 3)))
                return
            if op == "stats":
                await self._send(writer, result_frame(
                    request_id, op="stats", **self.stats_payload()))
                return
            if op == "shutdown":
                await self._send(writer, result_frame(
                    request_id, op="shutdown", stopping=True))
                self.begin_drain()
                return
            if self._draining:
                self._count_failure()
                await self._send(writer, error_frame(
                    request_id, "unavailable",
                    "server is draining; not accepting new work"))
                return
            try:
                pending = self._build_spec(op, dict(params), effort)
            except ProtocolError as exc:
                self._count_failure()
                await self._send(writer, error_frame(
                    request_id, exc.code, str(exc)))
                return
            except ConfigError as exc:
                self._count_failure()
                await self._send(writer, error_frame(
                    request_id, "bad-request", str(exc)))
                return
            await self._admit_and_run(writer, request_id, pending,
                                      deadline_s, effort, arrived_at)

    # -- spec construction (acceptor side, cheap) --------------------------

    def _build_spec(self, op: str, params: Dict[str, Any],
                    effort: Optional[str]) -> _PendingCompute:
        if op == "analyze":
            return self._build_analyze_spec(params, effort)
        if op == "verify":
            return self._build_verify_spec(params)
        if op == "size":
            return self._build_size_spec(params)
        raise BadRequest(f"op {op!r} not dispatchable")

    def _fault_plan(self, params: Dict[str, Any]):
        """Honor a ``fault`` param (test harnesses only): a FaultPlan
        field dict, e.g. ``{"crash_origins": ["N1"], "crash_attempts":
        [0, 1, 2]}``."""
        spec = params.pop("fault", None)
        if spec is None:
            return None
        if not self.config.allow_fault_injection:
            raise BadRequest(
                "fault injection is disabled on this server")
        from repro.verify.faults import FaultPlan

        known = {f.name for f in FaultPlan.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        unknown = sorted(set(spec) - known)
        if unknown:
            raise BadRequest(f"unknown fault fields: {', '.join(unknown)}")
        coerced = {key: tuple(value) if isinstance(value, list) else value
                   for key, value in spec.items()}
        return FaultPlan(**coerced)

    def _fleet_fault(self, params: Dict[str, Any]) -> Optional[Dict]:
        """Honor a ``fleet_fault`` param (chaos harness only): worker-
        level crash/hang injection, e.g. ``{"crash_attempts": [0]}``."""
        spec = params.pop("fleet_fault", None)
        if spec is None:
            return None
        if not self.config.allow_fault_injection:
            raise BadRequest(
                "fault injection is disabled on this server")
        if self.config.fleet < 1:
            raise BadRequest(
                "fleet_fault requires a worker fleet (--fleet >= 1)")
        unknown = sorted(set(spec) - set(FLEET_FAULT_FIELDS))
        if unknown:
            raise BadRequest(
                f"unknown fleet_fault fields: {', '.join(unknown)}")
        return dict(spec)

    def _build_analyze_spec(self, params: Dict[str, Any],
                            effort: Optional[str]) -> _PendingCompute:
        fault_plan = self._fault_plan(params)
        fleet_fault = self._fleet_fault(params)
        request = AnalysisRequest.from_params(params)
        if effort is not None:
            # Effort tiers are deterministic (same cap -> same result),
            # so they merge *before* fingerprinting; the deadline's
            # wall budget is charged at dispatch, after the queue wait.
            merged = resolve_budgets(request.budgets(), None, effort)
            request = replace(
                request,
                wall_budget=merged.wall_seconds if merged else None,
                extension_budget=merged.max_extensions if merged else None,
                backtrack_budget=merged.max_backtracks if merged else None,
            )
        memoizable = (request.deterministic() and fault_plan is None
                      and fleet_fault is None)
        spec: Dict[str, Any] = {
            "op": "analyze",
            "request": asdict(request),
            "fault": fault_plan,
        }
        if fleet_fault:
            spec["fleet_fault"] = fleet_fault
        return _PendingCompute(
            op="analyze", spec=spec, request=request,
            memoizable=memoizable, fingerprint=request.fingerprint(),
            hog=(effort == "exhaustive"))

    def _build_verify_spec(self, params: Dict[str, Any]) -> _PendingCompute:
        circuits = params.get("circuits")
        if not circuits or not isinstance(circuits, list):
            raise BadRequest(
                "verify requires a non-empty 'circuits' list param")
        allowed = {"circuits", "oracle", "metamorphic", "max_inputs",
                   "jobs", "tech"}
        unknown = sorted(set(params) - allowed)
        if unknown:
            raise BadRequest(f"unknown verify params: {', '.join(unknown)}")
        if not params.get("oracle") and not params.get("metamorphic"):
            raise BadRequest(
                "verify requires 'oracle' and/or 'metamorphic'")
        return _PendingCompute(op="verify",
                               spec={"op": "verify", "params": params})

    def _build_size_spec(self, params: Dict[str, Any]) -> _PendingCompute:
        if "netlist" not in params or "required_ps" not in params:
            raise BadRequest(
                "size requires 'netlist' and 'required_ps' params")
        import inspect

        allowed = set(inspect.signature(execute_size).parameters)
        unknown = sorted(set(params) - allowed)
        if unknown:
            raise BadRequest(f"unknown size params: {', '.join(unknown)}")
        return _PendingCompute(op="size",
                               spec={"op": "size", "params": params})

    # -- admission + dispatch ----------------------------------------------

    async def _admit_and_run(self, writer: asyncio.StreamWriter,
                             request_id: Any, pending: _PendingCompute,
                             deadline_s: Optional[float],
                             effort: Optional[str],
                             arrived_at: float) -> None:
        # Memo fast path: a deterministic repeat answers from the
        # acceptor without touching admission or a compute slot.
        if pending.memoizable and deadline_s is None:
            hit = self.results.get(pending.fingerprint)
            if hit is not None:
                frame = dict(hit, cached=True)
                frame["id"] = request_id
                await self._send(writer, frame)
                return
        deadline_at = (arrived_at + deadline_s
                       if deadline_s is not None else None)
        assert self._admission is not None
        attempt = 0
        hog = pending.hog
        spec = pending.spec
        while True:
            try:
                ticket = self._admission.submit(
                    request_id, effort=effort, deadline_at=deadline_at,
                    hog=hog)
            except Overloaded as exc:
                self._count_failure()
                await self._send(writer, error_frame(
                    request_id, exc.code, str(exc),
                    retry_after_s=exc.retry_after_s))
                return
            granted = await self._wait_for_grant(writer, request_id,
                                                 ticket, arrived_at)
            if not granted:
                self._count_failure()
                await self._send(writer, error_frame(
                    request_id, "deadline-exceeded",
                    f"deadline of {deadline_s:g}s expired after "
                    f"{time.monotonic() - arrived_at:.3f}s in queue"))
                return
            # Slot granted: charge the queue wait against the deadline.
            if pending.op == "analyze" and deadline_s is not None:
                try:
                    merged = resolve_budgets(
                        pending.request.budgets(), deadline_s, None,
                        queued_at=arrived_at)
                except ProtocolError as exc:
                    self._admission.release(ticket)
                    self._count_failure()
                    await self._send(writer, error_frame(
                        request_id, exc.code, str(exc)))
                    return
                request = replace(
                    pending.request,
                    wall_budget=merged.wall_seconds if merged else None,
                    extension_budget=(merged.max_extensions
                                      if merged else None),
                    backtrack_budget=(merged.max_backtracks
                                      if merged else None),
                )
                wall = request.wall_budget
                spec = dict(spec, request=asdict(request))
                if wall is not None:
                    # Hard kill horizon for a *hung* worker: the search
                    # honors the wall budget itself, so the supervisor
                    # only steps in well past it.
                    spec["timeout_s"] = wall + max(5.0, wall)
            if hog:
                spec = dict(spec, hog=True)
            dispatched_at = time.monotonic()
            try:
                frames = await self._run_with_heartbeats(
                    writer, request_id, spec, attempt, arrived_at, ticket)
            except Preempted:
                self._admission.release(ticket)
                attempt += 1
                hog = False  # a preempted request never yields twice
                spec = dict(spec, hog=False)
                continue
            self._admission.release(
                ticket, service_s=time.monotonic() - dispatched_at)
            break
        terminal = frames[-1]
        if terminal.get("kind") == "error":
            self._count_failure()
        elif pending.op == "analyze":
            elapsed = terminal.get("elapsed_s")
            if elapsed is not None:
                obs.histogram("service.analyze_seconds").observe(elapsed)
            if pending.memoizable and deadline_s is None:
                self.results.put(
                    pending.fingerprint,
                    {key: value for key, value in terminal.items()
                     if key not in ("elapsed_s", "metrics")})
        for frame in frames:
            if frame.get("id") is None:
                frame["id"] = request_id
            await self._send(writer, frame)

    async def _wait_for_grant(self, writer: asyncio.StreamWriter,
                              request_id: Any, ticket: Ticket,
                              arrived_at: float) -> bool:
        """Await the ticket, beating with ``state="queued"`` and the
        queue position; returns whether the ticket was granted (False =
        expired).  Triggers at most one hog preemption per wait."""
        assert self._admission is not None
        preempt_tried = False
        while not (ticket.granted or ticket.expired):
            resolved = await ticket.wait(self.config.heartbeat_interval)
            if resolved:
                break
            if (ticket.deadline_at is not None
                    and time.monotonic() >= ticket.deadline_at):
                self._admission.expire(ticket)
                break
            try:
                await self._send(writer, heartbeat_frame(
                    request_id, time.monotonic() - arrived_at,
                    state="queued", queued=True,
                    position=self._admission.position(ticket)))
            except (ConnectionResetError, BrokenPipeError):
                self._admission.abandon(ticket)
                raise
            if (not preempt_tried
                    and self.executor.preemptible()
                    and ticket.deadline_at is not None
                    and (time.monotonic() - arrived_at
                         >= self.config.preempt_after_s)
                    and self._admission.should_preempt()):
                preempt_tried = True
                self.executor.preempt_one()
        return ticket.granted

    async def _run_with_heartbeats(
        self, writer: asyncio.StreamWriter, request_id: Any,
        spec: Dict[str, Any], attempt: int, arrived_at: float,
        ticket: Ticket,
    ) -> List[Dict[str, Any]]:
        """Execute the spec on the current executor, beating while it
        runs.  Returns response frames; raises only :class:`Preempted`
        (executor-infrastructure failures map to error frames here)."""
        future = asyncio.wrap_future(self.executor.submit(spec, attempt))
        disconnected = False
        while True:
            done, _ = await asyncio.wait(
                [future], timeout=self.config.heartbeat_interval)
            if done:
                break
            if disconnected:
                continue
            try:
                await self._send(writer, heartbeat_frame(
                    request_id, time.monotonic() - arrived_at))
            except (ConnectionResetError, BrokenPipeError):
                # The client is gone but the compute is not cancelable;
                # keep waiting so the admission slot is released only
                # when the worker actually frees up.
                disconnected = True
        try:
            frames = future.result()
        except Preempted:
            raise
        except WorkerTimeout as exc:
            frames = [error_frame(request_id, "deadline-exceeded",
                                  str(exc))]
        except WorkerCrashed as exc:
            frames = [error_frame(request_id, "internal", str(exc))]
        except Exception as exc:  # defensive: run_work converts its own
            _log.warning("service.executor_error", op=spec.get("op"),
                         error=f"{type(exc).__name__}: {exc}")
            frames = [error_frame(request_id, "internal",
                                  f"{type(exc).__name__}: {exc}")]
        # On a mid-compute disconnect the frames are returned anyway:
        # the caller releases the slot first, then the doomed send
        # surfaces the broken pipe to the connection handler.
        return frames


def start_in_thread(config: Optional[ServiceConfig] = None) -> ServerHandle:
    """Run an :class:`AnalysisServer` in a daemon thread and block until
    it is bound (tests, benchmarks, and ``repro serve`` all use this)."""
    server = AnalysisServer(config)
    thread = threading.Thread(target=server.run, daemon=True,
                              name="repro-service-loop")
    thread.start()
    server.wait_ready()
    return ServerHandle(server=server, thread=thread)
