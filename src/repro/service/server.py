"""The analysis daemon: asyncio socket server over hot cached state.

One :class:`AnalysisServer` owns

* a :class:`~repro.service.cache.HotCache` of built
  :class:`~repro.service.requests.AnalysisContext` objects (circuit +
  charlib + compiled session) keyed by context fingerprint,
* a :class:`~repro.service.cache.ResultMemo` of rendered outcomes for
  deterministic request repeats,
* a thread pool for the actual compute (the asyncio loop only frames,
  validates, schedules, and heartbeats -- it never blocks on a search).

Request lifecycle: frame decoded -> envelope validated -> QoS resolved
(:func:`repro.service.qos.resolve_budgets`) -> context fetched or built
-> search executed under the context lock -> heartbeat frames every
``heartbeat_interval`` while computing -> for a degraded result, a
``partial`` frame with per-origin completeness (sound GBA bounds) ->
the terminal ``result`` or ``error`` frame.  Per-request counter deltas
are measured around the execution and shipped in the result's
``metrics`` field (exact when the request runs alone; under concurrency
deltas from overlapping requests may bleed in -- see docs/SERVICE.md).

The compute path is the *same code* the one-shot CLI runs
(:func:`repro.service.requests.execute_analysis` et al.), which is what
makes served reports byte-identical to CLI stdout.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional

from repro import obs
from repro.obs import metrics as obs_metrics
from repro.resilience.errors import ConfigError, ResilienceError
from repro.service.cache import HotCache, ResultMemo
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    BadRequest,
    ProtocolError,
    TruncatedFrame,
    encode_frame,
    error_frame,
    heartbeat_frame,
    partial_frame,
    read_frame,
    result_frame,
    validate_request,
)
from repro.service.qos import resolve_budgets
from repro.service.requests import (
    AnalysisRequest,
    build_context,
    execute_analysis,
    execute_size,
    execute_verify,
)

_log = obs.get_logger("repro.service")


@dataclass
class ServiceConfig:
    host: str = "127.0.0.1"
    #: 0 = let the OS pick (the bound port is on the server/handle).
    port: int = 0
    #: LRU capacity for built analysis contexts.
    cache_size: int = 8
    #: LRU capacity for memoized deterministic results.
    result_cache_size: int = 64
    #: Compute threads; also the number of requests in flight.
    max_concurrent: int = 4
    #: Seconds between liveness beats while a request computes.
    heartbeat_interval: float = 5.0
    #: Honor the ``fault`` request param (test/CI harnesses only).
    allow_fault_injection: bool = False
    max_frame_bytes: int = MAX_FRAME_BYTES


@dataclass
class ServerHandle:
    """A server running in a daemon thread (tests, benchmarks, CLI)."""

    server: "AnalysisServer"
    thread: threading.Thread

    @property
    def host(self) -> str:
        return self.server.config.host

    @property
    def port(self) -> int:
        assert self.server.port is not None, "server not bound yet"
        return self.server.port

    def stop(self, timeout: float = 30.0) -> None:
        self.server.request_stop()
        self.thread.join(timeout)


def _numeric_snapshot() -> Dict[str, float]:
    return {key: value for key, value in obs_metrics.snapshot().items()
            if isinstance(value, (int, float))}


def _numeric_delta(before: Dict[str, float]) -> Dict[str, float]:
    after = _numeric_snapshot()
    return {key: value - before.get(key, 0)
            for key, value in after.items()
            if value != before.get(key, 0)}


class AnalysisServer:
    """See the module docstring; construct, then :meth:`run` (blocking)
    or :func:`start_in_thread`."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.port: Optional[int] = None
        self.contexts = HotCache(self.config.cache_size, name="cache")
        self.results = ResultMemo(self.config.result_cache_size)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrent,
            thread_name_prefix="repro-service")
        self._started_at = time.monotonic()
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_async: Optional[asyncio.Event] = None
        self._requests_lock = threading.Lock()
        self._requests: Dict[str, int] = {}
        self._failed = 0
        self._client_tasks: set = set()

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> None:
        """Serve until :meth:`request_stop` (blocking; owns the loop)."""
        asyncio.run(self._serve())

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_async = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port)
        self.port = server.sockets[0].getsockname()[1]
        _log.info("service.listening", host=self.config.host, port=self.port)
        self._ready.set()
        try:
            await self._stop_async.wait()
        finally:
            server.close()
            await server.wait_closed()
            # Drain live connection handlers instead of letting
            # asyncio.run() cancel them un-awaited (which logs a noisy
            # CancelledError per connection on shutdown).
            live = [t for t in self._client_tasks if not t.done()]
            if live:
                _, pending = await asyncio.wait(live, timeout=2.0)
                for task in pending:
                    task.cancel()
                if pending:
                    await asyncio.gather(*pending, return_exceptions=True)
            self._executor.shutdown(wait=False)
            _log.info("service.stopped", port=self.port)

    def wait_ready(self, timeout: float = 60.0) -> None:
        if not self._ready.wait(timeout):
            raise TimeoutError("service did not come up in time")

    def request_stop(self) -> None:
        """Thread-safe shutdown trigger (also the ``shutdown`` op)."""
        loop, stop = self._loop, self._stop_async
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)

    # -- bookkeeping -------------------------------------------------------

    def _count(self, op: str) -> None:
        obs.counter("service.requests").inc()
        obs.counter("service.requests_by_op", op=op).inc()
        with self._requests_lock:
            self._requests[op] = self._requests.get(op, 0) + 1

    def _count_failure(self) -> None:
        obs.counter("service.requests_failed").inc()
        with self._requests_lock:
            self._failed += 1

    def stats_payload(self) -> Dict[str, Any]:
        with self._requests_lock:
            by_op = dict(self._requests)
            failed = self._failed
        return {
            "protocol_version": PROTOCOL_VERSION,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "requests": {
                "total": sum(by_op.values()),
                "by_op": by_op,
                "failed": failed,
            },
            "contexts": self.contexts.stats(),
            "results": self.results.stats(),
            "metrics": obs.snapshot(),
        }

    # -- connection handling ----------------------------------------------

    async def _send(self, writer: asyncio.StreamWriter,
                    payload: Dict[str, Any]) -> None:
        writer.write(encode_frame(payload, self.config.max_frame_bytes))
        await writer.drain()

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        obs.counter("service.connections").inc()
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
            task.add_done_callback(self._client_tasks.discard)
        try:
            while True:
                try:
                    payload = await read_frame(
                        reader, self.config.max_frame_bytes)
                except TruncatedFrame:
                    # Peer vanished mid-frame; nothing to answer to.
                    obs.counter("service.truncated_frames").inc()
                    break
                except ProtocolError as exc:
                    obs.counter("service.protocol_errors").inc()
                    await self._send(writer, error_frame(
                        exc.request_id, exc.code, str(exc)))
                    if exc.fatal:
                        break
                    continue
                if payload is None:
                    break  # clean EOF at a frame boundary
                try:
                    request_id, op, params, deadline_s, effort = \
                        validate_request(payload)
                except ProtocolError as exc:
                    obs.counter("service.protocol_errors").inc()
                    await self._send(writer, error_frame(
                        exc.request_id, exc.code, str(exc)))
                    continue
                await self._process(writer, request_id, op, params,
                                    deadline_s, effort)
                if op == "shutdown":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # peer went away; the server keeps serving others
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # -- request processing ------------------------------------------------

    async def _process(self, writer: asyncio.StreamWriter, request_id: Any,
                       op: str, params: Dict[str, Any],
                       deadline_s: Optional[float],
                       effort: Optional[str]) -> None:
        queued_at = time.monotonic()
        self._count(op)
        with obs.span(f"service.request.{op}"):
            if op == "ping":
                await self._send(writer, result_frame(
                    request_id, op="ping", pong=True,
                    uptime_s=round(queued_at - self._started_at, 3)))
                return
            if op == "stats":
                await self._send(writer, result_frame(
                    request_id, op="stats", **self.stats_payload()))
                return
            if op == "shutdown":
                await self._send(writer, result_frame(
                    request_id, op="shutdown", stopping=True))
                self.request_stop()
                return
            try:
                runner = self._build_runner(op, dict(params), deadline_s,
                                            effort, queued_at)
            except ProtocolError as exc:
                self._count_failure()
                await self._send(writer, error_frame(
                    request_id, exc.code, str(exc)))
                return
            except ConfigError as exc:
                self._count_failure()
                await self._send(writer, error_frame(
                    request_id, "bad-request", str(exc)))
                return
            await self._run_with_heartbeats(writer, request_id, runner,
                                            queued_at)

    async def _run_with_heartbeats(
        self, writer: asyncio.StreamWriter, request_id: Any,
        runner: Callable[[], List[Dict[str, Any]]], queued_at: float,
    ) -> None:
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self._executor, runner)
        while True:
            done, _ = await asyncio.wait(
                [future], timeout=self.config.heartbeat_interval)
            if done:
                break
            await self._send(writer, heartbeat_frame(
                request_id, time.monotonic() - queued_at))
        try:
            frames = future.result()
        except ProtocolError as exc:
            self._count_failure()
            frames = [error_frame(request_id, exc.code, str(exc))]
        except ConfigError as exc:
            self._count_failure()
            frames = [error_frame(request_id, "bad-request", str(exc))]
        except ResilienceError as exc:
            self._count_failure()
            frames = [error_frame(request_id, "internal", str(exc))]
        except Exception as exc:
            self._count_failure()
            _log.warning("service.request_error", op="analyze",
                         error=f"{type(exc).__name__}: {exc}")
            frames = [error_frame(request_id, "internal",
                                  f"{type(exc).__name__}: {exc}")]
        for frame in frames:
            if frame.get("id") is None:
                frame["id"] = request_id
            await self._send(writer, frame)

    # -- op runners (execute in the thread pool) ---------------------------

    def _build_runner(self, op: str, params: Dict[str, Any],
                      deadline_s: Optional[float], effort: Optional[str],
                      queued_at: float) -> Callable[[], List[Dict[str, Any]]]:
        if op == "analyze":
            return self._prepare_analyze(params, deadline_s, effort,
                                         queued_at)
        if op == "verify":
            return self._prepare_verify(params)
        if op == "size":
            return self._prepare_size(params)
        raise BadRequest(f"op {op!r} not dispatchable")

    def _fault_plan(self, params: Dict[str, Any]):
        """Honor a ``fault`` param (test harnesses only): a FaultPlan
        field dict, e.g. ``{"crash_origins": ["N1"], "crash_attempts":
        [0, 1, 2]}``."""
        spec = params.pop("fault", None)
        if spec is None:
            return None
        if not self.config.allow_fault_injection:
            raise BadRequest(
                "fault injection is disabled on this server")
        from repro.verify.faults import FaultPlan

        known = {f.name for f in FaultPlan.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        unknown = sorted(set(spec) - known)
        if unknown:
            raise BadRequest(f"unknown fault fields: {', '.join(unknown)}")
        coerced = {key: tuple(value) if isinstance(value, list) else value
                   for key, value in spec.items()}
        return FaultPlan(**coerced)

    def _prepare_analyze(self, params, deadline_s, effort, queued_at):
        fault_plan = self._fault_plan(params)
        request = AnalysisRequest.from_params(params)
        if deadline_s is not None or effort is not None:
            merged = resolve_budgets(request.budgets(), deadline_s, effort,
                                     queued_at=queued_at)
            request = replace(
                request,
                wall_budget=merged.wall_seconds if merged else None,
                extension_budget=merged.max_extensions if merged else None,
                backtrack_budget=merged.max_backtracks if merged else None,
            )
        memoizable = request.deterministic() and fault_plan is None
        fingerprint = request.fingerprint()

        def runner() -> List[Dict[str, Any]]:
            if memoizable:
                hit = self.results.get(fingerprint)
                if hit is not None:
                    return [dict(hit, cached=True)]
            context = self.contexts.get_or_build(
                request.context_key(), lambda: build_context(request))
            with context.lock:
                before = _numeric_snapshot()
                started = time.monotonic()
                outcome = execute_analysis(request, context=context,
                                           fault_plan=fault_plan)
                elapsed = time.monotonic() - started
                delta = _numeric_delta(before)
            obs.histogram("service.analyze_seconds").observe(elapsed)
            fields: Dict[str, Any] = {
                "op": "analyze",
                "report": outcome.report,
                "paths": len(outcome.paths),
                "degraded": outcome.degraded,
                "cached": False,
                "elapsed_s": round(elapsed, 6),
                "metrics": delta,
            }
            frames: List[Dict[str, Any]] = []
            if outcome.degraded and outcome.completeness is not None:
                completeness = [o.as_dict() for o in
                                outcome.completeness.origins.values()]
                fields["completeness"] = completeness
                frames.append(partial_frame(None, completeness))
            result = result_frame(None, **fields)
            if memoizable:
                self.results.put(
                    fingerprint,
                    {key: value for key, value in result.items()
                     if key not in ("elapsed_s", "metrics")})
            frames.append(result)
            return frames

        return runner

    def _prepare_verify(self, params):
        circuits = params.pop("circuits", None)
        if not circuits or not isinstance(circuits, list):
            raise BadRequest(
                "verify requires a non-empty 'circuits' list param")
        allowed = {"oracle", "metamorphic", "max_inputs", "jobs", "tech"}
        unknown = sorted(set(params) - allowed)
        if unknown:
            raise BadRequest(f"unknown verify params: {', '.join(unknown)}")
        if not params.get("oracle") and not params.get("metamorphic"):
            raise BadRequest(
                "verify requires 'oracle' and/or 'metamorphic'")

        def runner() -> List[Dict[str, Any]]:
            outcome = execute_verify(circuits, **params)
            return [result_frame(None, op="verify", report=outcome.report,
                                 ok=outcome.ok)]

        return runner

    def _prepare_size(self, params):
        if "netlist" not in params or "required_ps" not in params:
            raise BadRequest(
                "size requires 'netlist' and 'required_ps' params")
        import inspect

        allowed = set(inspect.signature(execute_size).parameters)
        unknown = sorted(set(params) - allowed)
        if unknown:
            raise BadRequest(f"unknown size params: {', '.join(unknown)}")

        def runner() -> List[Dict[str, Any]]:
            outcome = execute_size(**params)
            return [result_frame(None, op="size", report=outcome.report,
                                 **outcome.payload)]

        return runner


def start_in_thread(config: Optional[ServiceConfig] = None) -> ServerHandle:
    """Run an :class:`AnalysisServer` in a daemon thread and block until
    it is bound (tests, benchmarks, and ``repro serve`` all use this)."""
    server = AnalysisServer(config)
    thread = threading.Thread(target=server.run, daemon=True,
                              name="repro-service-loop")
    thread.start()
    server.wait_ready()
    return ServerHandle(server=server, thread=thread)
