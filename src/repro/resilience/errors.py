"""Structured error taxonomy for the STA pipeline.

Every failure a user can hit maps to one exception class carrying a
process exit code (BSD ``sysexits.h`` conventions where one fits) and a
one-line human message, so the CLI can print ``error: <message>`` and
exit with a *distinct* nonzero status instead of dumping a raw
traceback.  ``--log-level debug`` keeps the full stack.

The taxonomy is a leaf module -- it imports nothing from the rest of
the package -- so any layer (netlist parsing, characterization, the
search, the parallel supervisor) can raise through it without import
cycles.  :func:`classify` wraps foreign exceptions (``OSError`` from a
bad netlist path, parser ``ValueError``\\ s) into the taxonomy at the
boundaries that receive user input.
"""

from __future__ import annotations

from typing import Optional

#: Conventional exit codes (sysexits.h + shell SIGINT convention).
EXIT_DATAERR = 65       #: malformed input data (netlist, library)
EXIT_NOINPUT = 66       #: input file missing / unreadable
EXIT_UNAVAILABLE = 69   #: a required resource (timing arc) is absent
EXIT_SOFTWARE = 70      #: internal invariant violation
EXIT_CANTCREAT = 73     #: a requested output file cannot be written
EXIT_TEMPFAIL = 75      #: shard/worker failure after retries
EXIT_CONFIG = 78        #: bad configuration (checkpoint mismatch, flags)
EXIT_INTERRUPTED = 130  #: SIGINT (128 + signal 2)


class ResilienceError(Exception):
    """Base of the taxonomy: an error with an exit code and a one-line
    user-facing message (``str(exc)``)."""

    exit_code: int = EXIT_SOFTWARE

    def __init__(self, message: str, *, cause: Optional[BaseException] = None):
        super().__init__(message)
        if cause is not None:
            self.__cause__ = cause


class NetlistLoadError(ResilienceError):
    """Netlist file missing, unreadable, or of an unknown format."""

    exit_code = EXIT_NOINPUT


class NetlistFormatError(ResilienceError):
    """Netlist parsed but is malformed (syntax, unknown cell, bad pin)."""

    exit_code = EXIT_DATAERR


class UnknownCellError(NetlistFormatError):
    """An instance references a cell the library does not provide."""


class MissingArcFailure(ResilienceError):
    """A timing arc required by the analysis is absent from the
    characterized library and the active missing-arc policy forbids
    substitution (see :mod:`repro.core.delaycalc`)."""

    exit_code = EXIT_UNAVAILABLE


class OutputWriteError(ResilienceError):
    """A user-requested output artifact (``--metrics-json``,
    ``--trace-json``, ``--json``) could not be written.  The analysis
    itself succeeded, but silently dropping a requested artifact is a
    failure: exit ``EX_CANTCREAT`` instead of 0."""

    exit_code = EXIT_CANTCREAT


class ConfigError(ResilienceError, ValueError):
    """A flag or option value the user supplied is invalid (unknown
    missing-arc policy, ``--jobs 0``, ...).

    Maps to ``EX_CONFIG`` so bad configuration exits 78 with a
    one-line message instead of either a raw ``ValueError`` traceback
    or the misleading ``EX_DATAERR`` that :func:`classify` assigns to
    generic ``ValueError``\\ s (which is reserved for malformed *input
    data*).  Also subclasses :class:`ValueError` for callers that
    historically caught the raw validation error."""

    exit_code = EXIT_CONFIG


class CheckpointError(ResilienceError):
    """Checkpoint file unreadable, corrupt, or incompatible with the
    current circuit/search configuration."""

    exit_code = EXIT_CONFIG


class ShardFailureError(ResilienceError):
    """A parallel shard kept failing after exhausting its retry budget
    *and* the in-process serial fallback."""

    exit_code = EXIT_TEMPFAIL


class SearchInterrupted(ResilienceError):
    """The search was interrupted (SIGINT); completed-shard results and
    metrics were preserved before unwinding."""

    exit_code = EXIT_INTERRUPTED


def classify(exc: BaseException, context: str = "") -> ResilienceError:
    """Wrap a foreign exception into the taxonomy.

    Used at user-input boundaries (CLI netlist loading, checkpoint
    reads) so one ``except ResilienceError`` in the driver covers every
    failure; already-classified errors pass through unchanged.
    """
    if isinstance(exc, ResilienceError):
        return exc
    prefix = f"{context}: " if context else ""
    if isinstance(exc, FileNotFoundError):
        return NetlistLoadError(f"{prefix}file not found: {exc.filename or exc}",
                                cause=exc)
    if isinstance(exc, (IsADirectoryError, PermissionError, OSError)):
        return NetlistLoadError(f"{prefix}cannot read input: {exc}", cause=exc)
    if isinstance(exc, (ValueError, KeyError)):
        detail = exc.args[0] if exc.args else exc
        return NetlistFormatError(f"{prefix}{detail}", cause=exc)
    return ResilienceError(f"{prefix}{exc}", cause=exc)
