"""Checkpoint/resume for long-running searches.

A multi-hour exhaustive run must survive crashes and SIGINT.  The
search is sharded per origin (one primary input at a time), so the
natural checkpoint granularity is the *completed origin*: after each
origin finishes, the supervisor appends its path list, search-effort
counters, and completeness status to a JSON snapshot, written
atomically (temp file + rename) so a crash mid-write never corrupts the
last good checkpoint.

A checkpoint is bound to its run by a configuration fingerprint (the
circuit name plus every search parameter that affects the path set).
``--resume`` refuses a checkpoint whose fingerprint does not match the
current invocation -- silently resuming a run with different pruning or
budgets would splice incompatible path sets together.

Paths round-trip through :func:`repro.core.report.path_to_dict` /
``path_from_dict`` exactly (JSON floats are shortest-round-trip), which
is what makes checkpoint-resume runs byte-identical to uninterrupted
ones -- the property the fault-injection harness pins.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.path import TimedPath
from repro.core.report import path_from_dict, path_to_dict
from repro.obs.logging import get_logger
from repro.resilience.errors import CheckpointError

_log = get_logger("repro.resilience")

#: Schema version; bumped on incompatible layout changes.
CHECKPOINT_VERSION = 1


def config_fingerprint(circuit_name: str, origins: Sequence[str],
                       search_kwargs: Dict) -> str:
    """Stable digest of everything that shapes the path set."""
    payload = json.dumps(
        {
            "circuit": circuit_name,
            "origins": list(origins),
            "search": {k: search_kwargs[k] for k in sorted(search_kwargs)},
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()


class Checkpoint:
    """In-memory image of one checkpoint file."""

    def __init__(self, circuit_name: str, fingerprint: str):
        self.circuit_name = circuit_name
        self.fingerprint = fingerprint
        #: origin name -> (status, paths, stats dict, counter deltas).
        self.shards: Dict[str, Dict] = {}

    # ------------------------------------------------------------------
    def record(self, origin: str, status: str, paths: Sequence[TimedPath],
               stats: Dict[str, float], deltas: Dict[str, int]) -> None:
        self.shards[origin] = {
            "status": status,
            "paths": [path_to_dict(p) for p in paths],
            "stats": stats,
            "deltas": deltas,
        }

    def completed_origins(self) -> List[str]:
        """Origins safe to skip on resume: their recorded path set is
        exact, so replaying them would only duplicate work."""
        return [name for name, shard in self.shards.items()
                if shard["status"] == "complete"]

    def shard_result(
        self, origin: str
    ) -> Tuple[str, List[TimedPath], Dict[str, float], Dict[str, int]]:
        shard = self.shards[origin]
        return (
            shard["status"],
            [path_from_dict(d) for d in shard["paths"]],
            dict(shard["stats"]),
            {k: int(v) for k, v in shard["deltas"].items()},
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "version": CHECKPOINT_VERSION,
            "circuit": self.circuit_name,
            "fingerprint": self.fingerprint,
            "shards": self.shards,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Checkpoint":
        if data.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {data.get('version')!r} is not "
                f"supported (expected {CHECKPOINT_VERSION})"
            )
        ckpt = cls(data["circuit"], data["fingerprint"])
        ckpt.shards = dict(data["shards"])
        return ckpt


class CheckpointWriter:
    """Appends shard results to an on-disk checkpoint, atomically.

    ``flush_every`` bounds how many completed shards a crash can lose
    (default: flush after every shard -- one origin is minutes of work
    on the circuits that need checkpoints at all).
    """

    def __init__(self, path: Union[str, Path], circuit_name: str,
                 fingerprint: str, flush_every: int = 1):
        self.path = Path(path)
        self.checkpoint = Checkpoint(circuit_name, fingerprint)
        self.flush_every = max(1, flush_every)
        self._dirty = 0

    def record(self, origin: str, status: str, paths: Sequence[TimedPath],
               stats: Dict[str, float], deltas: Dict[str, int]) -> None:
        self.checkpoint.record(origin, status, paths, stats, deltas)
        self._dirty += 1
        if self._dirty >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        if self._dirty == 0:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        temporary = self.path.with_suffix(
            self.path.suffix + f".tmp{os.getpid()}"
        )
        temporary.write_text(json.dumps(self.checkpoint.to_dict()))
        temporary.replace(self.path)
        self._dirty = 0
        _log.debug("checkpoint.flushed", path=str(self.path),
                   shards=len(self.checkpoint.shards))


def load_checkpoint(path: Union[str, Path],
                    expect_fingerprint: Optional[str] = None) -> Checkpoint:
    """Read and validate a checkpoint file.

    Raises :class:`CheckpointError` on unreadable/corrupt files and on
    a fingerprint mismatch (the checkpoint belongs to a different
    circuit or search configuration).
    """
    file_path = Path(path)
    try:
        data = json.loads(file_path.read_text())
    except OSError as exc:
        raise CheckpointError(
            f"cannot read checkpoint {file_path}: {exc}", cause=exc
        )
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {file_path} is corrupt: {exc}", cause=exc
        )
    checkpoint = Checkpoint.from_dict(data)
    if (expect_fingerprint is not None
            and checkpoint.fingerprint != expect_fingerprint):
        raise CheckpointError(
            f"checkpoint {file_path} was written by a different "
            f"circuit/search configuration (fingerprint "
            f"{checkpoint.fingerprint} != expected {expect_fingerprint}); "
            "refusing to splice incompatible path sets"
        )
    _log.info("checkpoint.loaded", path=str(file_path),
              shards=len(checkpoint.shards),
              complete=len(checkpoint.completed_origins()))
    return checkpoint
