"""Anytime-search budgets and per-origin completeness accounting.

The exhaustive single-pass search has no intrinsic stopping point short
of completion, which on large circuits means hours.  A
:class:`SearchBudgets` caps the effort along three axes -- wall-clock
seconds, extensions tried, justification backtracks -- and the search
checks the ledger (:class:`BudgetLedger`) at each choice point.  When
any axis is exhausted the search *returns* instead of dying: every
path recorded so far is kept, and each origin is tagged with a
:data:`completeness <ORIGIN_STATUSES>` status so the report can say
exactly which parts of the answer are exact and which are bounded.

The statuses:

``complete``
    The origin's sub-search ran to exhaustion; its path set is exact.
``partial``
    The budget ran out mid-origin; the recorded paths are true paths
    but more may exist.  The report attaches the GBA forward-pass
    arrival as a sound upper bound on anything that was missed.
``skipped``
    The budget was already exhausted when the origin's turn came (or a
    checkpoint resume marked it pending); no paths were searched.
``failed``
    A parallel shard for this origin kept crashing after retries and
    the serial fallback; only the GBA bound is available.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Recognized per-origin completeness statuses, strongest first.
ORIGIN_STATUSES = ("complete", "partial", "skipped", "failed")

#: Wall-clock is polled once per this many extensions -- the search
#: loop is too hot for a perf_counter call per extension.
WALL_POLL_INTERVAL = 256


@dataclass(frozen=True)
class SearchBudgets:
    """Effort caps for one search run.  ``None`` disables an axis; the
    all-``None`` default is the exhaustive (budget-free) search."""

    wall_seconds: Optional[float] = None
    max_extensions: Optional[int] = None
    max_backtracks: Optional[int] = None

    def bounded(self) -> bool:
        return (self.wall_seconds is not None
                or self.max_extensions is not None
                or self.max_backtracks is not None)

    def as_dict(self) -> Dict[str, Optional[float]]:
        return {
            "wall_seconds": self.wall_seconds,
            "max_extensions": self.max_extensions,
            "max_backtracks": self.max_backtracks,
        }


class BudgetLedger:
    """Mutable effort ledger charged by the search loop.

    One ledger covers one whole run (all origins of a serial search, or
    one shard of a parallel one): origins finished before exhaustion
    stay ``complete``, the origin in flight when the ledger trips is
    ``partial``, later ones are ``skipped``.
    """

    __slots__ = ("budgets", "extensions", "backtracks", "started",
                 "exhausted", "exhausted_axis", "_poll")

    def __init__(self, budgets: SearchBudgets):
        self.budgets = budgets
        self.extensions = 0
        self.backtracks = 0
        self.started = time.perf_counter()
        self.exhausted = False
        self.exhausted_axis: Optional[str] = None
        self._poll = 0

    def charge_extension(self) -> bool:
        """Charge one extension attempt; True while budget remains."""
        if self.exhausted:
            return False
        b = self.budgets
        self.extensions += 1
        if (b.max_extensions is not None
                and self.extensions > b.max_extensions):
            return self._trip("extensions")
        if b.wall_seconds is not None:
            self._poll += 1
            if self._poll >= WALL_POLL_INTERVAL:
                self._poll = 0
                if time.perf_counter() - self.started > b.wall_seconds:
                    return self._trip("wall_seconds")
        return True

    def charge_backtracks(self, count: int) -> bool:
        """Charge justification backtracks; True while budget remains."""
        if self.exhausted:
            return False
        self.backtracks += count
        b = self.budgets
        if (b.max_backtracks is not None
                and self.backtracks > b.max_backtracks):
            return self._trip("backtracks")
        return True

    def _trip(self, axis: str) -> bool:
        self.exhausted = True
        self.exhausted_axis = axis
        return False


@dataclass
class OriginOutcome:
    """Completeness record of one origin's sub-search."""

    origin: str
    status: str
    paths_found: int = 0
    #: Sound upper bound (seconds) on any arrival this origin could
    #: still produce -- attached for every non-``complete`` origin from
    #: the GBA forward pass; None while not yet computed.
    gba_bound: Optional[float] = None

    def as_dict(self) -> Dict:
        return {
            "origin": self.origin,
            "status": self.status,
            "paths_found": self.paths_found,
            "gba_bound": self.gba_bound,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "OriginOutcome":
        return cls(
            origin=data["origin"],
            status=data["status"],
            paths_found=int(data.get("paths_found", 0)),
            gba_bound=data.get("gba_bound"),
        )


@dataclass
class CompletenessReport:
    """Per-origin outcomes of one run, in origin declaration order."""

    origins: Dict[str, OriginOutcome] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return all(o.status == "complete" for o in self.origins.values())

    def degraded_origins(self) -> Dict[str, OriginOutcome]:
        return {name: o for name, o in self.origins.items()
                if o.status != "complete"}

    def summary(self) -> str:
        counts: Dict[str, int] = {}
        for outcome in self.origins.values():
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        body = ", ".join(
            f"{counts[s]} {s}" for s in ORIGIN_STATUSES if counts.get(s)
        )
        return body or "no origins"
