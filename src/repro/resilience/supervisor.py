"""Supervised parallel search: the driver that refuses to die.

The plain process-pool driver (PR 2) is all-or-nothing: one crashed
worker poisons the whole pool, one hung shard stalls the run forever,
and SIGINT unwinds through a child-process traceback storm with every
completed shard's work lost.  :class:`ShardSupervisor` wraps the same
shard/merge pipeline in a supervision loop:

* **Worker crashes** (``BrokenProcessPool``): the pool is rebuilt and
  every in-flight shard is re-queued.  A dead worker poisons all
  in-flight futures identically, so with several shards in flight the
  crasher cannot be identified; the casualties are then refunded and
  quarantined to run one at a time until a solo crash assigns blame.
  Only unambiguous crashes charge the bounded retry budget, with
  exponential backoff (``resilience.worker_crashes`` /
  ``resilience.shard_retries``).
* **Shard timeouts**: each pooled shard attempt carries a wall-clock
  deadline; an expired shard's pool is torn down (hung worker processes
  are terminated) and the shard re-queued
  (``resilience.shard_timeouts``).
* **Retry exhaustion**: the shard falls back to an in-process serial
  run -- worker-environment faults cannot follow it there.  If even
  that fails, the origin is recorded as ``failed`` with zero paths and
  the run *continues* (``resilience.serial_fallbacks``,
  ``resilience.degraded_origins``); only policy errors from the
  resilience taxonomy (e.g. a missing arc under the ``error`` policy)
  abort the run, because they are deterministic decisions, not
  infrastructure failures.
* **SIGINT**: the pool is shut down cleanly (workers ignore SIGINT, so
  there is no child traceback storm), completed-shard results and
  merged metrics are preserved, the checkpoint is flushed, and
  :class:`~repro.resilience.errors.SearchInterrupted` carries the
  partial result out.
* **Checkpoint/resume**: completed origins stream to a JSON snapshot
  (:mod:`repro.resilience.checkpoint`); a resumed run adopts them
  without re-searching and reproduces the exact path set of an
  uninterrupted run.

The merge stays byte-identical to the serial search: results are
collected per origin *index* and concatenated in declaration order, no
matter the completion, retry, or resume order.

This module is imported lazily (``repro.resilience.__init__`` does not
pull it in) because it imports the core search -- which itself uses the
leaf modules :mod:`repro.resilience.budgets` and
:mod:`repro.resilience.errors`.
"""

from __future__ import annotations

import signal
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.charlib.store import CharacterizedLibrary
from repro.core.delaycalc import DelayCalculator
from repro.core.engine import EngineCircuit
from repro.core.path import TimedPath
from repro.core.pathfinder import PathFinder, SearchStats
from repro.netlist.circuit import Circuit
from repro.obs import export as obs_export
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.obs.aggregate import (
    RegistryShipper,
    ShardTelemetry,
    merge_shard_telemetry,
    record_resource_usage,
)
from repro.obs.logging import get_logger
from repro.obs.progress import (
    HeartbeatPublisher,
    ProgressBoard,
    ProgressRenderer,
)
from repro.resilience.budgets import CompletenessReport, OriginOutcome
from repro.resilience.checkpoint import (
    CheckpointWriter,
    config_fingerprint,
    load_checkpoint,
)
from repro.resilience.errors import ResilienceError, SearchInterrupted

_log = get_logger("repro.resilience")

#: Supervision loop poll period (seconds): how often deadlines are
#: checked while waiting on in-flight shards.
_POLL_SECONDS = 0.05

#: Per-process worker context, set by the pool initializer.
_WORKER: Optional[Tuple] = None

#: One shard's wire format: paths, SearchStats.as_dict(), delaycalc
#: counter deltas, per-origin completeness outcome dicts.
ShardResult = Tuple[
    List[TimedPath], Dict[str, float], Dict[str, int], Dict[str, Dict]
]

#: What a pooled shard ships home: the result plus the worker's
#: registry/span delta (:mod:`repro.obs.aggregate`).
ShardShipment = Tuple[ShardResult, ShardTelemetry]

#: The delaycalc counters folded across shards into the parent registry.
DELTA_KEYS = (
    "delaycalc.arc_evaluations",
    "delaycalc.arc_cache_hits",
    "delaycalc.arc_cache_misses",
    "delaycalc.arc_substitutions",
)


def _init_worker(circuit: Circuit, charlib: CharacterizedLibrary,
                 calc_kwargs: Dict, finder_kwargs: Dict,
                 fault_plan: object, obs_config: Dict,
                 beat_queue: object, compiled_tables: object = None) -> None:
    # Workers ignore SIGINT: the parent owns interruption, so a Ctrl-C
    # does not spray one KeyboardInterrupt traceback per child.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # Mirror the parent's observability switches (a fork inherits them,
    # a spawn does not) and start this worker's telemetry shipper from
    # a clean slate: whatever the registry holds now predates the first
    # shard and must not ship.
    if obs_config.get("tracing"):
        obs_tracing.enable()
    if obs_config.get("events"):
        obs_tracing.capture_events()
        obs_tracing.drain_events()
    global _WORKER
    ec = EngineCircuit(circuit)
    # The parent's compiled timing tables (slew fixed point, worst-arc
    # delays, pruning bounds) are derived purely from circuit + corner:
    # seeding them gives byte-identical values without redoing the
    # sweeps once per worker process.
    calc = DelayCalculator(ec, charlib, compiled=compiled_tables,
                           **calc_kwargs)
    shipper = RegistryShipper()
    shipper.collect("__init__")  # absorb pre-shard registry state
    _WORKER = (ec, calc, finder_kwargs, fault_plan, shipper, beat_queue)


def run_shard(ec: EngineCircuit, calc: DelayCalculator, finder_kwargs: Dict,
              origins: Sequence[str],
              progress: object = None) -> ShardResult:
    """One shard's search, in whatever process this runs in."""
    before = (calc.arc_evaluations, calc.arc_cache_hits,
              calc.arc_cache_misses, calc.arc_substitutions)
    finder = PathFinder(ec, calc, progress=progress, **finder_kwargs)
    with finder.find_paths(inputs=origins) as stream:
        paths = list(stream)
    deltas = {
        "delaycalc.arc_evaluations": calc.arc_evaluations - before[0],
        "delaycalc.arc_cache_hits": calc.arc_cache_hits - before[1],
        "delaycalc.arc_cache_misses": calc.arc_cache_misses - before[2],
        "delaycalc.arc_substitutions": calc.arc_substitutions - before[3],
    }
    outcomes = {
        name: outcome.as_dict()
        for name, outcome in finder.completeness.origins.items()
    }
    return paths, finder.stats.as_dict(), deltas, outcomes


def _search_shard(origin: str, attempt: int) -> ShardShipment:
    ec, calc, finder_kwargs, fault_plan, shipper, beat_queue = _WORKER
    if fault_plan is not None:
        fault_plan.before_shard(origin, attempt, in_worker=True)
    publisher = (HeartbeatPublisher(beat_queue, origin)
                 if beat_queue is not None else None)
    if publisher is not None:
        publisher.started()
    try:
        result = run_shard(ec, calc, finder_kwargs, [origin],
                           progress=publisher)
    except Exception:
        # A failed attempt will be retried elsewhere; absorb whatever
        # the aborted search already recorded into the shipper baseline
        # so the *next* shard on this worker does not ship it.
        shipper.collect(origin)
        raise
    record_resource_usage()
    telemetry = shipper.collect(origin)
    if publisher is not None:
        stats = result[1]
        paths = result[0]
        publisher.done(
            extensions=int(stats.get("extensions_tried", 0)),
            paths=len(paths),
            best=max((p.worst_arrival for p in paths), default=None),
        )
    return result, telemetry


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision policy knobs (all have production-safe defaults)."""

    jobs: int = 1
    #: Wall-clock deadline per pooled shard *attempt* (None = no
    #: deadline).  Guards against hung workers; a shard that merely
    #: runs long is retried and ultimately completed by the serial
    #: fallback, so results never change -- only placement does.
    shard_timeout: Optional[float] = None
    #: Re-queue attempts per shard beyond the first try.
    shard_retries: int = 2
    #: Base of the exponential backoff before a retry is resubmitted
    #: (``backoff * 2**attempt`` seconds; 0 disables sleeping).
    retry_backoff: float = 0.05
    #: Run a shard in-process after its retries are exhausted.
    serial_fallback: bool = True
    checkpoint_path: Optional[str] = None
    resume_path: Optional[str] = None
    checkpoint_flush_every: int = 1
    #: Render a throttled live progress line (origins done/total,
    #: extensions, best bound, ETA) on stderr.
    progress: bool = False
    #: Treat a pooled shard whose *heartbeat* goes silent this long as
    #: hung (pool teardown + retry, like a deadline expiry) -- unlike
    #: ``shard_timeout`` this distinguishes a stalled shard from a
    #: merely slow one, which keeps beating.  None disables.
    heartbeat_timeout: Optional[float] = None


@dataclass
class SupervisedResult:
    """Merged outcome of one supervised run."""

    paths: List[TimedPath]
    stats: SearchStats
    completeness: CompletenessReport
    #: Shards adopted from the resume checkpoint without re-searching.
    resumed_shards: int = 0
    interrupted: bool = False

    @property
    def degraded(self) -> bool:
        return not self.completeness.complete


@dataclass(eq=False)  # identity semantics: shards live in sets/dicts
class _Shard:
    """Supervisor-side bookkeeping for one origin."""

    index: int
    origin: str
    attempts: int = 0
    result: Optional[ShardResult] = None
    status: str = "pending"
    deadline: Optional[float] = None
    submitted_at: Optional[float] = None
    fallback_error: Optional[str] = None
    #: Metrics for this shard already landed in the parent registry
    #: (telemetry merge for pooled shards, direct publication for
    #: in-process ones); the merge must not publish them again.
    published: bool = False


class ShardSupervisor:
    """Runs the per-origin shards of one search under supervision.

    One instance covers one search invocation; :meth:`run` is the only
    entry point.  ``jobs == 1`` runs every shard in-process (no pool)
    through the identical bookkeeping/merge/checkpoint code, which is
    the reference for the equivalence tests.
    """

    def __init__(
        self,
        circuit: Circuit,
        charlib: CharacterizedLibrary,
        calc_kwargs: Dict,
        finder_kwargs: Dict,
        config: SupervisorConfig,
        fault_plan: object = None,
    ):
        self.circuit = circuit
        self.charlib = charlib
        self.calc_kwargs = dict(calc_kwargs)
        self.finder_kwargs = dict(finder_kwargs)
        self.config = config
        self.fault_plan = fault_plan
        #: Parent-computed :class:`~repro.core.tarrays.CompiledTables`
        #: shipped to every worker (and any in-process fallback
        #: calculator).  Deliberately not part of ``calc_kwargs``: it is
        #: derived state, excluded from the checkpoint fingerprint.
        self.compiled_tables = None
        self._ec: Optional[EngineCircuit] = None
        self._calc: Optional[DelayCalculator] = None
        self._completed_count = 0
        self._writer: Optional[CheckpointWriter] = None
        self._board: Optional[ProgressBoard] = None
        self._beat_queue = None  # manager-queue proxy (pooled + board)
        # Shards caught in a pool break whose blame was ambiguous; run
        # one at a time until the crasher identifies itself solo.
        self._suspects: set = set()
        self.metrics = {
            "worker_crashes": 0,
            "shard_timeouts": 0,
            "heartbeat_stalls": 0,
            "shard_retries": 0,
            "serial_fallbacks": 0,
        }

    # ------------------------------------------------------------------
    def _in_process_context(self) -> Tuple[EngineCircuit, DelayCalculator]:
        """Lazy parent-process search context (serial mode, fallbacks)."""
        if self._ec is None:
            self._ec = EngineCircuit(self.circuit)
            self._calc = DelayCalculator(self._ec, self.charlib,
                                         compiled=self.compiled_tables,
                                         **self.calc_kwargs)
        return self._ec, self._calc

    def attach_parent_context(self, ec: EngineCircuit,
                              calc: DelayCalculator) -> None:
        """Reuse an already-built circuit/calculator (the parallel
        driver builds one to precompute pruning bounds)."""
        self._ec, self._calc = ec, calc

    # ------------------------------------------------------------------
    def run(self, origins: Sequence[str]) -> SupervisedResult:
        shards = [_Shard(index, origin)
                  for index, origin in enumerate(origins)]
        if self.config.progress or self.config.heartbeat_timeout is not None:
            renderer = ProgressRenderer() if self.config.progress else None
            self._board = ProgressBoard(len(shards), renderer=renderer)
        fingerprint = config_fingerprint(
            self.circuit.name, list(origins),
            {**self.finder_kwargs, **self.calc_kwargs,
             "budgets": self._budget_dict()},
        )
        resumed = self._adopt_resume(shards, fingerprint)
        if self.config.checkpoint_path:
            self._writer = CheckpointWriter(
                self.config.checkpoint_path, self.circuit.name, fingerprint,
                flush_every=self.config.checkpoint_flush_every,
            )
            # Carry adopted shards forward so a later resume of the new
            # checkpoint still covers them.
            for shard in shards:
                if shard.result is not None:
                    self._record_checkpoint(shard)

        if self._board is not None:
            for shard in shards:
                if shard.result is not None:  # adopted from the resume
                    self._board.mark_done(shard.origin,
                                          paths=len(shard.result[0]))
        pending = [s for s in shards if s.result is None]
        interrupted = False
        try:
            if pending:
                if self.config.jobs > 1:
                    self._run_pooled(pending)
                else:
                    self._run_serial(pending)
        except KeyboardInterrupt:
            interrupted = True
        finally:
            if self._writer is not None:
                self._writer.flush()
            if self._board is not None:
                self._board.close()

        result = self._merge(shards, resumed, interrupted)
        if interrupted:
            exc = SearchInterrupted(
                f"search interrupted after {self._completed_count} "
                "completed shard(s); merged partial results preserved"
                + (f" in checkpoint {self.config.checkpoint_path}"
                   if self.config.checkpoint_path else "")
            )
            exc.partial = result
            raise exc
        return result

    def _budget_dict(self) -> Optional[Dict]:
        budgets = self.finder_kwargs.get("budgets")
        return budgets.as_dict() if budgets is not None else None

    # ------------------------------------------------------------------
    def _adopt_resume(self, shards: List[_Shard], fingerprint: str) -> int:
        if not self.config.resume_path:
            return 0
        checkpoint = load_checkpoint(self.config.resume_path, fingerprint)
        adopted = 0
        by_origin = {s.origin: s for s in shards}
        for origin in checkpoint.completed_origins():
            shard = by_origin.get(origin)
            if shard is None:
                continue
            status, paths, stats, deltas = checkpoint.shard_result(origin)
            outcome = OriginOutcome(origin, status,
                                    paths_found=len(paths)).as_dict()
            shard.result = (paths, stats, deltas, {origin: outcome})
            shard.status = status
            adopted += 1
        _log.info("supervisor.resumed", path=self.config.resume_path,
                  adopted=adopted, total=len(shards))
        return adopted

    def _record_checkpoint(self, shard: _Shard) -> None:
        if self._writer is None or shard.result is None:
            return
        paths, stats, deltas, outcomes = shard.result
        self._writer.record(shard.origin, shard.status, paths, stats, deltas)
        obs_export.instant("resilience.checkpoint_write",
                           origin=shard.origin, status=shard.status)

    # ------------------------------------------------------------------
    def _finish_shard(self, shard: _Shard, result: ShardResult,
                      telemetry: Optional[ShardTelemetry] = None,
                      in_process: bool = False) -> None:
        self._suspects.discard(shard)
        shard.result = result
        if telemetry is not None:
            # Pooled shard: fold the worker's registry/span delta into
            # this process's registry (counters add, histograms merge,
            # gauges keep a shard label, trace events land on the
            # worker's lane).
            merge_shard_telemetry(telemetry)
            shard.published = True
        elif in_process:
            # The in-process search already published straight into
            # this registry at stream close.
            shard.published = True
        outcome = result[3].get(shard.origin)
        shard.status = outcome["status"] if outcome else "complete"
        self._completed_count += 1
        if self._board is not None and telemetry is None:
            self._board.mark_done(
                shard.origin, paths=len(result[0]),
                extensions=int(result[1].get("extensions_tried", 0)),
            )
        self._record_checkpoint(shard)
        if (self.fault_plan is not None
                and getattr(self.fault_plan, "interrupt_after", None)
                is not None
                and self._completed_count >= self.fault_plan.interrupt_after):
            # Deterministic SIGINT simulation for the fault harness:
            # exercises the exact KeyboardInterrupt unwind path.
            raise KeyboardInterrupt

    def _fail_shard(self, shard: _Shard, reason: str) -> None:
        """Retries and fallback exhausted: degrade, don't die."""
        shard.status = "failed"
        shard.fallback_error = reason
        shard.result = (
            [], SearchStats().as_dict(), {key: 0 for key in DELTA_KEYS},
            {shard.origin: OriginOutcome(shard.origin, "failed").as_dict()},
        )
        self._completed_count += 1
        if self._board is not None:
            self._board.mark_done(shard.origin)
        self._record_checkpoint(shard)
        _log.error("supervisor.shard_failed", origin=shard.origin,
                   attempts=shard.attempts, reason=reason)

    # ------------------------------------------------------------------
    def _run_serial(self, pending: List[_Shard]) -> None:
        ec, calc = self._in_process_context()
        for shard in pending:
            if self.fault_plan is not None:
                self.fault_plan.before_shard(shard.origin, shard.attempts,
                                             in_worker=False)
            shard.attempts += 1
            self._finish_shard(
                shard,
                run_shard(ec, calc, self.finder_kwargs, [shard.origin],
                          progress=self._local_progress(shard.origin)),
                in_process=True,
            )

    def _local_progress(self, origin: str) -> Optional[HeartbeatPublisher]:
        """In-process shards beat straight into the board, no queue."""
        if self._board is None:
            return None
        return HeartbeatPublisher(self._board.update, origin)

    # ------------------------------------------------------------------
    def _make_pool(self) -> ProcessPoolExecutor:
        obs_config = {
            "tracing": obs_tracing.enabled(),
            "events": obs_tracing.events_enabled(),
        }
        return ProcessPoolExecutor(
            max_workers=self.config.jobs,
            initializer=_init_worker,
            initargs=(self.circuit, self.charlib, self.calc_kwargs,
                      self.finder_kwargs, self.fault_plan, obs_config,
                      self._beat_queue, self.compiled_tables),
        )

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down without waiting on hung workers."""
        pool.shutdown(wait=False, cancel_futures=True)
        for process in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                process.terminate()
            except Exception:
                pass

    def _run_pooled(self, pending: List[_Shard]) -> None:
        config = self.config
        queue: Deque[_Shard] = deque(pending)
        in_flight: Dict[Future, _Shard] = {}
        retry_at: List[Tuple[float, _Shard]] = []
        manager = None
        if self._board is not None:
            import multiprocessing

            manager = multiprocessing.Manager()
            self._beat_queue = manager.Queue()
        pool = self._make_pool()
        try:
            while queue or in_flight or retry_at:
                now = time.monotonic()
                # Promote retries whose backoff has elapsed.
                due = [entry for entry in retry_at if entry[0] <= now]
                for entry in due:
                    retry_at.remove(entry)
                    queue.append(entry[1])
                while queue and len(in_flight) < config.jobs:
                    if self._suspects:
                        # Quarantine: blame for the last pool break was
                        # ambiguous, so suspects run strictly alone --
                        # the next break identifies the crasher.
                        if in_flight:
                            break
                        idx = next((i for i, s in enumerate(queue)
                                    if s in self._suspects), None)
                        if idx is None:
                            break
                        shard = queue[idx]
                        del queue[idx]
                    else:
                        shard = queue.popleft()
                    future = pool.submit(_search_shard, shard.origin,
                                         shard.attempts)
                    shard.attempts += 1
                    shard.submitted_at = time.monotonic()
                    shard.deadline = (
                        shard.submitted_at + config.shard_timeout
                        if config.shard_timeout is not None else None
                    )
                    if self._board is not None:
                        # A stale beat from a previous attempt must not
                        # mask a silent retry.
                        self._board.last_beat.pop(shard.origin, None)
                    in_flight[future] = shard
                if not in_flight:
                    # Only backed-off retries remain: sleep to the next.
                    if retry_at:
                        time.sleep(
                            max(0.0, min(t for t, _ in retry_at)
                                - time.monotonic())
                        )
                    continue
                done, _ = wait(list(in_flight), timeout=_POLL_SECONDS,
                               return_when=FIRST_COMPLETED)
                self._drain_beats()
                pool_broken = False
                broken: List[_Shard] = []
                for future in done:
                    shard = in_flight.pop(future)
                    try:
                        result, telemetry = future.result()
                    except BrokenProcessPool:
                        broken.append(shard)
                        pool_broken = True
                    except ResilienceError:
                        # Policy decision (missing arc under `error`,
                        # checkpoint mismatch...): deterministic, so a
                        # retry cannot help -- propagate.
                        raise
                    except Exception as exc:  # worker raised: retry
                        _log.warning("supervisor.shard_error",
                                     origin=shard.origin,
                                     attempt=shard.attempts, error=str(exc))
                        self._requeue(shard, queue, retry_at)
                    else:
                        self._finish_shard(shard, result,
                                           telemetry=telemetry)
                if pool_broken:
                    # A dead worker poisons every in-flight future with
                    # the same BrokenProcessPool, so the executor cannot
                    # say which shard crashed.  Charge the retry budget
                    # only when blame is unambiguous (a single shard was
                    # in flight); otherwise refund all casualties and
                    # quarantine them to run one at a time.
                    casualties = broken + list(in_flight.values())
                    in_flight.clear()
                    self.metrics["worker_crashes"] += 1
                    obs_export.instant(
                        "resilience.worker_crash",
                        origins=",".join(s.origin for s in casualties))
                    _log.warning(
                        "supervisor.worker_crash",
                        origins=",".join(s.origin for s in casualties))
                    if len(casualties) == 1:
                        self._requeue(casualties[0], queue, retry_at)
                    else:
                        for shard in casualties:
                            shard.attempts -= 1  # blame unproven
                            self._suspects.add(shard)
                            queue.append(shard)
                    self._kill_pool(pool)
                    pool = self._make_pool()
                    continue
                # Deadline sweep: a hung worker cannot be cancelled, so
                # the whole pool is torn down and survivors re-queued.
                now = time.monotonic()
                expired = [
                    (future, shard) for future, shard in in_flight.items()
                    if shard.deadline is not None and now > shard.deadline
                ]
                for _future, shard in expired:
                    self.metrics["shard_timeouts"] += 1
                    obs_export.instant("resilience.shard_timeout",
                                       origin=shard.origin,
                                       attempt=shard.attempts)
                    _log.warning("supervisor.shard_timeout",
                                 origin=shard.origin,
                                 attempt=shard.attempts,
                                 timeout=config.shard_timeout)
                # Heartbeat sweep: a shard whose beats went silent is
                # stalled (a slow one keeps beating); same teardown.
                if (config.heartbeat_timeout is not None
                        and self._board is not None):
                    flagged = {shard for _f, shard in expired}
                    for future, shard in in_flight.items():
                        if shard in flagged:
                            continue
                        age = self._board.beat_age(shard.origin)
                        if age is None and shard.submitted_at is not None:
                            age = now - shard.submitted_at
                        if age is not None and age > config.heartbeat_timeout:
                            expired.append((future, shard))
                            self.metrics["heartbeat_stalls"] += 1
                            obs_export.instant(
                                "resilience.heartbeat_stall",
                                origin=shard.origin, silent_s=round(age, 3))
                            _log.warning("supervisor.heartbeat_stall",
                                         origin=shard.origin,
                                         attempt=shard.attempts,
                                         silent_s=age)
                if expired:
                    expired_shards = {shard for _f, shard in expired}
                    for future, shard in list(in_flight.items()):
                        if shard in expired_shards:
                            self._requeue(shard, queue, retry_at)
                        else:
                            shard.attempts -= 1  # innocent casualty
                            queue.append(shard)
                    in_flight.clear()
                    self._kill_pool(pool)
                    pool = self._make_pool()
        except KeyboardInterrupt:
            self._kill_pool(pool)
            raise
        else:
            pool.shutdown()
        finally:
            self._drain_beats()
            if manager is not None:
                self._beat_queue = None
                manager.shutdown()

    def _drain_beats(self) -> None:
        if self._beat_queue is None or self._board is None:
            return
        while True:
            try:
                beat = self._beat_queue.get_nowait()
            except Exception:  # queue.Empty, or a torn-down manager
                break
            self._board.update(beat)

    def _requeue(self, shard: _Shard, queue: Deque[_Shard],
                 retry_at: List[Tuple[float, _Shard]]) -> None:
        """Schedule a failed attempt for retry, or exhaust into the
        serial fallback."""
        self._suspects.discard(shard)  # blame assigned: quarantine over
        if shard.attempts <= self.config.shard_retries:
            self.metrics["shard_retries"] += 1
            obs_export.instant("resilience.shard_retry",
                               origin=shard.origin, attempt=shard.attempts)
            backoff = self.config.retry_backoff * (2 ** (shard.attempts - 1))
            if backoff > 0:
                retry_at.append((time.monotonic() + backoff, shard))
            else:
                queue.append(shard)
            return
        if self.config.serial_fallback:
            self.metrics["serial_fallbacks"] += 1
            obs_export.instant("resilience.serial_fallback",
                               origin=shard.origin, attempts=shard.attempts)
            _log.warning("supervisor.serial_fallback", origin=shard.origin,
                         attempts=shard.attempts)
            ec, calc = self._in_process_context()
            try:
                self._finish_shard(
                    shard,
                    run_shard(ec, calc, self.finder_kwargs, [shard.origin],
                              progress=self._local_progress(shard.origin)),
                    in_process=True,
                )
            except KeyboardInterrupt:
                raise
            except ResilienceError:
                raise
            except Exception as exc:
                self._fail_shard(shard, f"serial fallback failed: {exc}")
            return
        self._fail_shard(shard, "retries exhausted, serial fallback disabled")

    # ------------------------------------------------------------------
    def _merge(self, shards: List[_Shard], resumed: int,
               interrupted: bool) -> SupervisedResult:
        """Fold shard results in origin declaration order and publish
        the merged totals -- identical semantics to the plain parallel
        driver, plus completeness and resilience accounting."""
        max_paths = self.finder_kwargs.get("max_paths")
        paths: List[TimedPath] = []
        merged = SearchStats()
        # Shards whose metrics never reached this registry -- adopted
        # from a resume checkpoint, or recorded as failed -- are
        # published here from their checkpointed stats/deltas.  Pooled
        # shards arrived via telemetry shipping and in-process shards
        # published at stream close; re-publishing either would double
        # count (which the old unconditional publish did for every
        # supervised serial run).
        unpublished = SearchStats()
        totals: Dict[str, int] = {key: 0 for key in DELTA_KEYS}
        completeness = CompletenessReport()
        for shard in shards:
            if shard.result is None:
                completeness.origins[shard.origin] = OriginOutcome(
                    shard.origin, "skipped"
                )
                continue
            shard_paths, stats_dict, deltas, outcomes = shard.result
            if max_paths is None or len(paths) < max_paths:
                paths.extend(shard_paths)
            merged.merge(stats_dict)
            if not shard.published:
                unpublished.merge(stats_dict)
                for key, value in deltas.items():
                    totals[key] = totals.get(key, 0) + value
            for name, outcome in outcomes.items():
                completeness.origins[name] = OriginOutcome.from_dict(outcome)
        if max_paths is not None:
            del paths[max_paths:]

        name = self.circuit.name
        unpublished.publish(name)
        registry = obs_metrics.REGISTRY
        for key in DELTA_KEYS:
            value = totals.get(key, 0)
            registry.counter(key).inc(value)
            registry.counter(key, circuit=name).inc(value)
        for key, value in self.metrics.items():
            registry.counter(f"resilience.{key}").inc(value)
        degraded = len(completeness.degraded_origins())
        registry.counter("resilience.degraded_origins").inc(degraded)
        if resumed:
            registry.counter("resilience.resumed_shards").inc(resumed)
        _log.debug("supervisor.done", circuit=name, shards=len(shards),
                   paths=len(paths), degraded=degraded, resumed=resumed,
                   interrupted=interrupted, **self.metrics)
        return SupervisedResult(
            paths=paths,
            stats=merged,
            completeness=completeness,
            resumed_shards=resumed,
            interrupted=interrupted,
        )
