"""Resilience layer: the pipeline degrades instead of dying.

Four cooperating pieces:

* :mod:`repro.resilience.errors` -- structured error taxonomy with
  per-class exit codes, so the CLI maps every failure to a one-line
  message and a distinct status instead of a raw traceback;
* :mod:`repro.resilience.budgets` -- anytime-search budgets
  (wall-clock / extensions / backtracks) and per-origin completeness
  statuses for degraded-mode results;
* :mod:`repro.resilience.checkpoint` -- atomic JSON snapshots of
  completed origins for crash/SIGINT survival and exact resume;
* :mod:`repro.resilience.supervisor` -- the supervised parallel driver:
  per-shard timeouts, worker-crash detection, bounded retry with
  backoff, serial fallback, and clean SIGINT unwinding.

Only the leaf modules (errors, budgets) are re-exported here: the core
search imports them, so pulling :mod:`~repro.resilience.supervisor`
(which imports the core search back) into the package ``__init__``
would create an import cycle.  Import the supervisor and checkpoint
modules explicitly.

Recovery events surface through :mod:`repro.obs` as ``resilience.*``
metrics: ``shard_retries``, ``worker_crashes``, ``shard_timeouts``,
``serial_fallbacks``, ``degraded_origins``, ``resumed_shards``.
"""

from repro.resilience.budgets import (
    BudgetLedger,
    CompletenessReport,
    ORIGIN_STATUSES,
    OriginOutcome,
    SearchBudgets,
)
from repro.resilience.errors import (
    CheckpointError,
    MissingArcFailure,
    NetlistFormatError,
    NetlistLoadError,
    ResilienceError,
    SearchInterrupted,
    ShardFailureError,
    UnknownCellError,
    classify,
)

__all__ = [
    "BudgetLedger",
    "CheckpointError",
    "CompletenessReport",
    "MissingArcFailure",
    "NetlistFormatError",
    "NetlistLoadError",
    "ORIGIN_STATUSES",
    "OriginOutcome",
    "ResilienceError",
    "SearchBudgets",
    "SearchInterrupted",
    "ShardFailureError",
    "UnknownCellError",
    "classify",
]
