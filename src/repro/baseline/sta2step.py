"""The complete two-step baseline tool ("commercial tool").

Step one enumerates structural paths longest-first; step two checks
them for sensitizability with the easiest-vector, backtrack-limited
strategy.  Delays come from vector-blind LUT arcs.  The run report
carries exactly the counters of the paper's Table 6.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.baseline.sensitize import PathStatus, SensitizeOutcome, TwoStepSensitizer
from repro.baseline.structural import StructuralEnumerator, StructuralPath
from repro.charlib.store import CharacterizedLibrary
from repro.core.delaycalc import DEFAULT_INPUT_SLEW, DelayCalculator
from repro.core.engine import EngineCircuit
from repro.core.path import TimedPath
from repro.netlist.circuit import Circuit
from repro.obs import metrics as obs_metrics
from repro.obs.tracing import span

_END_OF_PATHS = object()


@dataclass
class TwoStepReport:
    """Counters matching the commercial-tool columns of Table 6.

    Like :class:`repro.core.pathfinder.SearchStats`, the counters are
    plain attributes during the run and :meth:`publish` mirrors them
    into the metrics registry under ``baseline.*`` so developed-vs-
    baseline search effort is directly comparable in one snapshot.
    """

    backtrack_limit: Optional[int]
    paths_explored: int = 0
    true_paths: int = 0
    declared_false: int = 0
    backtrack_limited: int = 0
    justification_backtracks: int = 0
    cpu_seconds: float = 0.0
    results: List[SensitizeOutcome] = field(default_factory=list)
    structural_paths: List[StructuralPath] = field(default_factory=list)

    @property
    def no_vector_ratio(self) -> float:
        """Paths for which no input vector was produced / explored
        ("False path ratio" column: declared-false plus aborted)."""
        if not self.paths_explored:
            return 0.0
        return (self.declared_false + self.backtrack_limited) / self.paths_explored

    def as_row(self) -> Dict[str, object]:
        return {
            "backtrack_limit": self.backtrack_limit,
            "cpu_s": round(self.cpu_seconds, 3),
            "paths": self.paths_explored,
            "true": self.true_paths,
            "false": self.declared_false,
            "aborted": self.backtrack_limited,
            "no_vector_ratio": round(self.no_vector_ratio, 3),
        }

    def as_dict(self) -> Dict[str, float]:
        return {
            "paths_explored": self.paths_explored,
            "true_paths": self.true_paths,
            "declared_false": self.declared_false,
            "backtrack_limited": self.backtrack_limited,
            "justification_backtracks": self.justification_backtracks,
            "cpu_seconds": self.cpu_seconds,
        }

    def publish(self, circuit: Optional[str] = None) -> None:
        registry = obs_metrics.REGISTRY
        for name, value in self.as_dict().items():
            registry.counter(f"baseline.{name}").inc(max(value, 0))
            if circuit:
                registry.counter(f"baseline.{name}", circuit=circuit).inc(
                    max(value, 0)
                )


class TwoStepSTA:
    """Two-step static timing analysis with vector-blind LUT delays.

    Parameters
    ----------
    circuit:
        Circuit to analyze.
    charlib:
        LUT library characterized with ``vector_mode="default"``.
    backtrack_limit:
        Shared sensitization budget per path (the paper sweeps 1000 to
        25000 on c6288).
    """

    def __init__(
        self,
        circuit: Circuit,
        charlib: CharacterizedLibrary,
        temp: float = 25.0,
        vdd: Optional[float] = None,
        input_slew: float = DEFAULT_INPUT_SLEW,
        backtrack_limit: Optional[int] = 1000,
    ):
        circuit.check()
        self.circuit = circuit
        self.charlib = charlib
        self.backtrack_limit = backtrack_limit
        self.ec = EngineCircuit(circuit)
        vector_blind = charlib.metadata.get("vector_mode") == "default"
        self.calc = DelayCalculator(
            self.ec,
            charlib,
            temp=temp,
            vdd=vdd,
            input_slew=input_slew,
            vector_blind=vector_blind,
        )
        self.enumerator = StructuralEnumerator(self.ec, self.calc)
        self.sensitizer = TwoStepSensitizer(
            self.ec, self.calc, backtrack_limit=backtrack_limit
        )

    # ------------------------------------------------------------------
    def run(self, max_structural_paths: int = 1000) -> TwoStepReport:
        """Explore the longest ``max_structural_paths`` structural paths
        (the commercial tool's path-count knob) and sensitize each."""
        report = TwoStepReport(backtrack_limit=self.backtrack_limit)
        started = time.perf_counter()
        arc_evals_before = self.calc.arc_evaluations
        structural = self.enumerator.iter_paths(limit=max_structural_paths)
        while True:
            # Pull structural candidates and sensitize them under
            # separate spans so the two-step cost split (enumerate vs.
            # check) is visible next to the developed tool's profile.
            with span("baseline.structural"):
                spath = next(structural, _END_OF_PATHS)
            if spath is _END_OF_PATHS:
                break
            with span("baseline.sensitize"):
                outcome = self.sensitizer.check(spath)
            report.paths_explored += 1
            report.justification_backtracks += outcome.backtracks
            report.results.append(outcome)
            report.structural_paths.append(spath)
            if outcome.status is PathStatus.TRUE:
                report.true_paths += 1
            elif outcome.status is PathStatus.FALSE:
                report.declared_false += 1
            else:
                report.backtrack_limited += 1
        report.cpu_seconds = time.perf_counter() - started
        name = self.circuit.name
        report.publish(name)
        registry = obs_metrics.REGISTRY
        for metric, value in (
            ("baseline.vectors_committed", self.sensitizer.vectors_committed),
            ("baseline.vectors_rejected", self.sensitizer.vectors_rejected),
        ):
            # Register even when zero so the snapshot schema is stable.
            registry.counter(metric).inc(value)
            registry.counter(metric, circuit=name).inc(value)
        self.sensitizer.vectors_committed = 0
        self.sensitizer.vectors_rejected = 0
        delta = self.calc.arc_evaluations - arc_evals_before
        registry.counter("delaycalc.arc_evaluations").inc(delta)
        registry.counter("delaycalc.arc_evaluations", circuit=name).inc(delta)
        return report

    def true_paths(self, report: TwoStepReport) -> List[TimedPath]:
        return [
            r.path for r in report.results if r.status is PathStatus.TRUE and r.path
        ]

    def worst_true_path(self, report: TwoStepReport) -> Optional[TimedPath]:
        paths = self.true_paths(report)
        if not paths:
            return None
        return max(paths, key=lambda p: p.worst_arrival)

    def structural_path_count(self) -> int:
        return self.enumerator.count_paths()

    def course_of(self, spath: StructuralPath) -> Tuple[str, ...]:
        """Net-name course of a structural path (matches
        :attr:`repro.core.path.TimedPath.course`)."""
        nets = [self.ec.net_names[spath.origin_net]]
        for gate_index, _pin in spath.hops:
            nets.append(self.ec.net_names[self.ec.gates[gate_index].output_net])
        return tuple(nets)
