"""Two-step "commercial tool" emulation.

The comparison baseline of the paper's evaluation: structural paths are
enumerated longest-first from vector-blind worst-case gate delays
(:mod:`repro.baseline.structural`), then each path is checked for
sensitizability with a backtrack-limited, easiest-vector-first
justification that never explores alternative vector combinations
(:mod:`repro.baseline.sensitize`).  Delays come from NLDM-style LUTs
characterized under a single default vector per pin.
"""

from repro.baseline.structural import StructuralEnumerator, StructuralPath
from repro.baseline.sensitize import PathStatus, SensitizeOutcome, TwoStepSensitizer
from repro.baseline.sta2step import TwoStepSTA

__all__ = [
    "PathStatus",
    "SensitizeOutcome",
    "StructuralEnumerator",
    "StructuralPath",
    "TwoStepSTA",
    "TwoStepSensitizer",
]
