"""Backtrack-limited path sensitization (baseline step two).

Given a structural path, the baseline walks it gate by gate.  At each
gate it tries the sensitization vectors of the traversed pin in
*easiest-first* order (fewest new side assignments) and **commits** to
the first vector whose side values justify -- it never revisits vector
choices made at earlier gates, and never enumerates further vectors
once one works.  That is the behaviour the paper ascribes to the
commercial tool: "it simply finds the case for which the complex gate
input assignations are easier to justify instead of exploring all the
possibilities".

Consequences measured in Table 6:

* paths whose only working vector combination requires a non-easiest
  choice at some gate get declared **false** (the "#False paths"
  column);
* a shared backtrack budget per path can run out, leaving the path
  undecided (the "Backtrack limited" column);
* when a path is found true, the reported vector is the easy one, so
  the reported delay frequently is not the worst-case vector delay
  (the "Worst delay prediction ratio" column).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baseline.structural import StructuralPath
from repro.core.delaycalc import DelayCalculator
from repro.core.engine import (
    COMPONENTS,
    EngineCircuit,
    EngineState,
    RISING,
    VectorOption,
)
from repro.core.justification import Justifier, JustifyResult
from repro.core.logic_values import Value9
from repro.core.path import PathStep, PolarityTiming, TimedPath


class PathStatus(enum.Enum):
    TRUE = "true"
    FALSE = "false"
    ABORTED = "aborted"  # backtrack limit reached before a decision


@dataclass
class SensitizeOutcome:
    """Result of checking one structural path."""

    status: PathStatus
    backtracks: int
    path: Optional[TimedPath] = None  # set when status is TRUE


class TwoStepSensitizer:
    """Checks structural paths with the commercial-tool strategy."""

    def __init__(
        self,
        ec: EngineCircuit,
        calc: DelayCalculator,
        backtrack_limit: Optional[int] = 1000,
    ):
        self.ec = ec
        self.calc = calc
        self.backtrack_limit = backtrack_limit
        #: Search-effort counters across this sensitizer's lifetime
        #: (plain attributes; the owning tool publishes them).
        self.vectors_committed = 0
        self.vectors_rejected = 0

    # ------------------------------------------------------------------
    def check(self, spath: StructuralPath) -> SensitizeOutcome:
        state = EngineState(self.ec)
        state.assign(spath.origin_net, Value9.RISE, RISING)
        state.assign(spath.origin_net, Value9.FALL, 1 - RISING)
        if not state.propagate():
            return SensitizeOutcome(PathStatus.FALSE, 0)

        budget_used = 0
        current_net = spath.origin_net
        timing = {
            comp: (0.0, self.calc.input_slew)
            for comp in COMPONENTS
            if state.alive[comp]
        }
        steps: List[PathStep] = []
        gate_delays: Dict[int, List[float]] = {comp: [] for comp in timing}
        gate_slews: Dict[int, List[float]] = {comp: [] for comp in timing}

        for gate_index, pin in spath.hops:
            gate = self.ec.gates[gate_index]
            options = self._easiest_first(state, gate.options[pin])
            committed = None
            for option in options:
                mark = state.checkpoint()
                ok = True
                for net, bit in option.side_assignments:
                    if not state.require_steady(net, bit):
                        ok = False
                        break
                if ok:
                    ok = state.propagate()
                if ok:
                    remaining = (
                        None
                        if self.backtrack_limit is None
                        else self.backtrack_limit - budget_used
                    )
                    justifier = Justifier(state, backtrack_limit=remaining)
                    result = justifier.justify()
                    budget_used += justifier.backtracks
                    if result is JustifyResult.ABORTED:
                        return SensitizeOutcome(PathStatus.ABORTED, budget_used)
                    ok = result is JustifyResult.SAT
                if ok:
                    committed = option
                    self.vectors_committed += 1
                    break
                state.rollback(mark)
                self.vectors_rejected += 1
                budget_used += 1
                if (
                    self.backtrack_limit is not None
                    and budget_used > self.backtrack_limit
                ):
                    return SensitizeOutcome(PathStatus.ABORTED, budget_used)
            if committed is None:
                # No vector worked at this gate; earlier commitments are
                # never revisited -- the path is declared false (rightly
                # or wrongly).
                return SensitizeOutcome(PathStatus.FALSE, budget_used)
            new_timing = self._advance_timing(state, gate, pin, committed,
                                              current_net, timing)
            if not new_timing:
                return SensitizeOutcome(PathStatus.FALSE, budget_used)
            for comp, (arrival, out_slew) in new_timing.items():
                gate_delays[comp].append(arrival - timing[comp][0])
                gate_slews[comp].append(out_slew)
            timing = new_timing
            steps.append(
                PathStep(
                    gate_name=gate.inst.name,
                    cell_name=gate.cell.name,
                    pin=pin,
                    vector_id=committed.vector.vector_id,
                    case=committed.vector.case,
                    fo=self.calc.fo[gate.index],
                )
            )
            current_net = gate.output_net

        path = self._build_path(state, spath, steps, timing, gate_delays,
                                gate_slews)
        if path is None:
            return SensitizeOutcome(PathStatus.FALSE, budget_used)
        return SensitizeOutcome(PathStatus.TRUE, budget_used, path)

    # ------------------------------------------------------------------
    def _easiest_first(
        self, state: EngineState, options: List[VectorOption]
    ) -> List[VectorOption]:
        """Order vectors by how many side values still need assigning
        (a cheap proxy for justification effort a lazy tool would use)."""

        def cost(option: VectorOption) -> Tuple[int, int]:
            pending = 0
            for net, bit in option.side_assignments:
                required = Value9.steady(bit)
                already = all(
                    state.values[comp][net] == required
                    for comp in COMPONENTS
                    if state.alive[comp]
                )
                if not already:
                    pending += 1
            return (pending, option.vector.case)

        return sorted(options, key=cost)

    def _advance_timing(self, state, gate, pin, option, current_net, timing):
        out_net = gate.output_net
        new_timing: Dict[int, Tuple[float, float]] = {}
        for comp, (arrival, slew) in timing.items():
            if not state.alive[comp]:
                continue
            in_value = state.values[comp][current_net]
            out_value = state.values[comp][out_net]
            if not Value9.is_transition(in_value) or not Value9.is_transition(
                out_value
            ):
                continue
            delay, out_slew = self.calc.arc_timing(
                gate,
                pin,
                option.vector.vector_id,
                in_value == Value9.RISE,
                out_value == Value9.RISE,
                slew,
            )
            new_timing[comp] = (arrival + delay, out_slew)
        return new_timing

    def _build_path(self, state, spath, steps, timing, gate_delays,
                    gate_slews) -> Optional[TimedPath]:
        nets = [self.ec.net_names[spath.origin_net]]
        for gate_index, _pin in spath.hops:
            nets.append(self.ec.net_names[self.ec.gates[gate_index].output_net])
        polarity: Dict[int, PolarityTiming] = {}
        for comp, (arrival, slew) in timing.items():
            if not state.alive[comp]:
                continue
            out_value = state.values[comp][spath.terminal_net]
            delays = gate_delays.get(comp, [])
            if len(delays) != len(steps):
                continue  # component died mid-path; its chain is incomplete
            polarity[comp] = PolarityTiming(
                input_rising=comp == RISING,
                output_rising=out_value == Value9.RISE,
                arrival=arrival,
                slew=slew,
                gate_delays=list(delays),
                gate_slews=list(gate_slews.get(comp, [])),
                input_vector=state.input_vector(comp),
            )
        if not polarity:
            return None
        multi_vector = any(
            len(self.ec.gates[g].options[pin]) > 1 for g, pin in spath.hops
        )
        return TimedPath(
            circuit_name=self.ec.circuit.name,
            nets=tuple(nets),
            steps=tuple(steps),
            rise=polarity.get(RISING),
            fall=polarity.get(1 - RISING),
            multi_vector=multi_vector,
        )
