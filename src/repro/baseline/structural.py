"""Longest-first structural path enumeration (baseline step one).

Commercial two-step timers first enumerate structural paths in
decreasing delay order *without* checking sensitizability.  This module
implements exact longest-first enumeration on the circuit DAG with an
A*-style priority queue: the priority of a partial path is its
accumulated worst-case delay plus the exact longest remaining delay to
any output (reverse-topological bound), so complete paths pop in
non-increasing order of their structural delay metric.

The well-known flaw the paper exploits: there is no way to know how
many structural paths must be enumerated before the N-th *true* path is
found.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.delaycalc import DelayCalculator
from repro.core.engine import EngineCircuit


@dataclass(frozen=True)
class StructuralPath:
    """A candidate path before sensitization checking."""

    #: (gate index, pin name) hops from input to output.
    hops: Tuple[Tuple[int, str], ...]
    origin_net: int
    terminal_net: int
    #: Structural (worst-case, vector-blind) delay metric used for
    #: ordering; not a timing claim.
    structural_delay: float

    @property
    def length(self) -> int:
        return len(self.hops)


class StructuralEnumerator:
    """Enumerates structural paths longest-first over the timing graph.

    Candidates walk the shared :class:`~repro.core.tgraph.TimingGraph`
    arcs; the ordering metric deliberately stays the commercial tool's
    context-free one (per-gate worst delay with the matching exact
    suffix bound as the A* heuristic) -- that *is* the baseline being
    reproduced, and the heuristic must be exact for the metric so paths
    pop in non-increasing structural-delay order.
    """

    def __init__(self, ec: EngineCircuit, calc: DelayCalculator):
        self.ec = ec
        self.calc = calc
        self._tg = ec.tgraph
        self._bounds = calc.remaining_bounds()

    def iter_paths(self, limit: Optional[int] = None) -> Iterator[StructuralPath]:
        """Yield structural paths in non-increasing structural delay."""
        counter = itertools.count()
        heap: List[Tuple[float, int, int, Tuple[Tuple[int, str], ...], float, int]] = []
        for origin in self.ec.input_ids:
            estimate = self._bounds[origin]
            heapq.heappush(
                heap, (-estimate, next(counter), origin, (), 0.0, origin)
            )
        emitted = 0
        while heap:
            neg_est, _tie, net, hops, delay, origin = heapq.heappop(heap)
            if self.ec.is_output[net] and hops:
                yield StructuralPath(
                    hops=hops,
                    origin_net=origin,
                    terminal_net=net,
                    structural_delay=delay,
                )
                emitted += 1
                if limit is not None and emitted >= limit:
                    return
            for arc in self._tg.fanout[net]:
                gate = self.ec.gates[arc.gate_index]
                new_delay = delay + self.calc.worst_gate_delay(gate)
                out = arc.dst_net
                estimate = new_delay + self._bounds[out]
                heapq.heappush(
                    heap,
                    (
                        -estimate,
                        next(counter),
                        out,
                        hops + ((arc.gate_index, arc.pin),),
                        new_delay,
                        origin,
                    ),
                )

    def count_paths(self) -> int:
        """Total number of structural input-to-output paths (dynamic
        programming; no enumeration)."""
        # Walk gates in reverse topological order: paths from a net =
        # paths from each (gate, pin) hop it feeds, plus 1 if PO.
        totals = [1 if self.ec.is_output[n] else 0 for n in range(self.ec.num_nets)]
        for gate in reversed(self.ec.gates):
            down = totals[gate.output_net]
            for net in gate.input_nets:
                totals[net] += down
        # A primary input that is also a primary output contributes a
        # zero-gate "path" to the DP that the enumerator (rightly)
        # never emits; exclude it.
        return sum(
            totals[n] - (1 if self.ec.is_output[n] else 0)
            for n in self.ec.input_ids
        )
