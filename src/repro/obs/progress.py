"""Live progress heartbeats for long (possibly parallel) searches.

Three pieces:

* :class:`HeartbeatPublisher` -- worker-side.  Hooked into the path
  search (``PathFinder(progress=...)``), it publishes small plain-dict
  beats (origin, extensions tried, paths found, current best arrival)
  onto a queue at a wall-clock-throttled rate, plus unconditional
  ``started`` / ``done`` beats around each shard.  The queue is a
  ``multiprocessing.Manager().Queue()`` proxy, which pickles through
  the pool initializer; in-process shards publish straight into the
  board with no queue at all.
* :class:`ProgressBoard` -- parent-side.  Folds beats into per-origin
  state, derives totals (origins done/total, extensions/s, best bound,
  ETA from the origin completion rate) and remembers each origin's
  last-beat time, which is what the supervisor's hang detection reads:
  a *slow* shard keeps beating with growing extension counts, a
  *stalled* one goes silent, and only the silent one trips the
  heartbeat deadline.
* :class:`ProgressRenderer` -- a throttled single-line stderr display
  (``--progress``): carriage-return refresh on a TTY, sparse appended
  lines otherwise.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, IO, Optional

#: Extensions between queue publications (beats are also wall-clock
#: throttled; this just keeps the hook's fast path branch-cheap).
BEAT_EXTENSION_INTERVAL = 1024

#: Minimum seconds between periodic beats from one shard.
BEAT_SECONDS = 0.25


class HeartbeatPublisher:
    """Worker-side beat source for one shard.

    Callable so it can be handed to ``PathFinder(progress=...)``; the
    finder invokes it periodically from the search loop.  ``sink`` is
    anything with ``put(dict)`` (a manager queue proxy) or a plain
    callable (the in-process board's ``update``).
    """

    def __init__(self, sink, origin: str,
                 min_interval: float = BEAT_SECONDS):
        self._put = sink.put if hasattr(sink, "put") else sink
        self.origin = origin
        self.min_interval = min_interval
        # -inf, not 0.0: monotonic() starts near zero on a fresh boot,
        # which would silently throttle the first periodic beat.
        self._last = float("-inf")

    def _emit(self, phase: str, extensions: int = 0, paths: int = 0,
              best: Optional[float] = None) -> None:
        try:
            self._put({
                "origin": self.origin,
                "phase": phase,
                "extensions": extensions,
                "paths": paths,
                "best": best,
                "ts": time.time(),
            })
        except Exception:
            # A torn-down manager (parent exiting) must never take the
            # search down with it.
            pass

    def started(self) -> None:
        self._emit("started")

    def done(self, extensions: int = 0, paths: int = 0,
             best: Optional[float] = None) -> None:
        self._emit("done", extensions, paths, best)

    def __call__(self, finder) -> None:
        now = time.monotonic()
        if now - self._last < self.min_interval:
            return
        self._last = now
        stats = finder.stats
        self._emit("running", stats.extensions_tried, stats.paths_found,
                   getattr(finder, "best_arrival", None))


class ProgressBoard:
    """Parent-side fold of heartbeat streams into run-level progress."""

    def __init__(self, total_origins: int,
                 renderer: Optional["ProgressRenderer"] = None):
        self.total = total_origins
        self.done = 0
        self.paths = 0
        self.best: Optional[float] = None
        self.started = time.monotonic()
        #: origin -> live extension count of the shard in flight.
        self.running: Dict[str, int] = {}
        #: extensions already banked by finished origins.
        self._banked = 0
        #: origin -> monotonic time of its last beat (hang detection).
        self.last_beat: Dict[str, float] = {}
        self.renderer = renderer

    # ------------------------------------------------------------------
    def update(self, beat: Dict) -> None:
        origin = beat["origin"]
        self.last_beat[origin] = time.monotonic()
        phase = beat.get("phase")
        if phase == "started":
            self.running.setdefault(origin, 0)
        elif phase == "done":
            # The done beat's count is authoritative (the last periodic
            # beat is throttled, hence stale); fall back to the live
            # count only for sources that never report one.
            live = self.running.pop(origin, 0)
            self._banked += beat.get("extensions") or live
            self.done += 1
            self.paths += beat.get("paths", 0)
        else:
            self.running[origin] = beat.get("extensions", 0)
        best = beat.get("best")
        if best is not None and (self.best is None or best > self.best):
            self.best = best
        if self.renderer is not None:
            self.renderer.maybe_render(self)

    def mark_done(self, origin: str, paths: int = 0,
                  extensions: int = 0) -> None:
        """Board-direct completion for shards that never beat (resumed,
        failed, in-process without a hook)."""
        self.update({"origin": origin, "phase": "done",
                     "extensions": extensions, "paths": paths,
                     "best": None})

    # ------------------------------------------------------------------
    @property
    def extensions(self) -> int:
        return self._banked + sum(self.running.values())

    def beat_age(self, origin: str) -> Optional[float]:
        """Seconds since the origin's last beat (None: never beat)."""
        last = self.last_beat.get(origin)
        return None if last is None else time.monotonic() - last

    def eta_seconds(self) -> Optional[float]:
        if not self.done or self.done >= self.total:
            return None
        elapsed = time.monotonic() - self.started
        return elapsed / self.done * (self.total - self.done)

    def summary(self) -> str:
        parts = [f"origins {self.done}/{self.total}"]
        extensions = self.extensions
        if extensions:
            parts.append(f"ext {_si(extensions)}")
        if self.paths:
            parts.append(f"paths {self.paths}")
        if self.best is not None:
            parts.append(f"best {self.best * 1e12:.1f}ps")
        eta = self.eta_seconds()
        if eta is not None:
            parts.append(f"eta {eta:.0f}s")
        return " · ".join(parts)

    def close(self) -> None:
        if self.renderer is not None:
            self.renderer.close(self)


class ProgressRenderer:
    """Throttled one-line stderr progress display."""

    def __init__(self, stream: Optional[IO] = None,
                 min_interval: float = 0.1):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._last = float("-inf")
        self._dirty = False
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())

    def maybe_render(self, board: ProgressBoard) -> None:
        now = time.monotonic()
        interval = self.min_interval if self._tty else \
            max(self.min_interval, 2.0)
        if now - self._last < interval:
            return
        self._last = now
        self._write(board)

    def _write(self, board: ProgressBoard) -> None:
        line = board.summary()
        if self._tty:
            self.stream.write(f"\r\x1b[2K{line}")
        else:
            self.stream.write(f"{line}\n")
        self.stream.flush()
        self._dirty = self._tty

    def close(self, board: ProgressBoard) -> None:
        line = board.summary()
        if self._dirty:
            self.stream.write(f"\r\x1b[2K{line}\n")
        else:
            self.stream.write(f"{line}\n")
        self.stream.flush()
        self._dirty = False


def _si(value: int) -> str:
    for threshold, suffix in ((1_000_000_000, "G"), (1_000_000, "M"),
                              (1_000, "k")):
        if value >= threshold:
            return f"{value / threshold:.1f}{suffix}"
    return str(value)


#: Signature of the search progress hook: called with the finder.
ProgressHook = Callable[[object], None]
