"""Cross-process telemetry shipping: shard snapshots in, one registry out.

The parallel drivers (:mod:`repro.perf.parallel`,
:mod:`repro.resilience.supervisor`) run shards in worker processes,
each with its *own* process-wide metrics registry and span tree.
Without shipping, everything those workers record -- counters,
histograms, labeled copies, span aggregates -- dies with the pool, and
a ``--jobs N`` run under-reports ``pathfinder.extensions_tried`` by
roughly ``(N-1)/N``.  This module closes that gap:

* **Worker side** -- a per-process :class:`RegistryShipper` snapshots
  the registry and the flat span aggregates at shard completion and
  returns only the *delta* since the previous shipment (workers are
  long-lived and serve many shards; shipping absolutes would double
  count).  The delta rides back piggybacked on the shard-result
  payload as a :class:`ShardTelemetry` -- plain picklable data.
* **Parent side** -- :func:`merge_shard_telemetry` folds a shipment
  into the parent registry: counters increment by the shipped delta,
  histograms merge bucket-exactly, span aggregates fold into
  :func:`repro.obs.tracing.aggregates`, and timeline events feed the
  trace-event collector (:mod:`repro.obs.export`) on the worker's
  lane.  Gauges are point-in-time per process, so they merge under a
  ``shard=<origin>`` label instead of being summed.

Merging is deterministic: the supervisor merges shipments in origin
declaration order, and every fold is commutative addition, so a
``--jobs N`` snapshot equals a serial one (modulo timing fields) no
matter the completion, retry, or fallback order.

:func:`record_resource_usage` stamps ``run.peak_rss_bytes`` and
``run.cpu_seconds`` gauges (self + children, via
``resource.getrusage``) so every analysis snapshot carries its
resource footprint -- per shard under parallel runs, via the same
gauge-labeling rule.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs import tracing
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_key,
)

try:  # pragma: no cover - always present on POSIX, absent on Windows
    import resource
except ImportError:  # pragma: no cover
    resource = None


@dataclass
class ShardTelemetry:
    """One shard's registry/span delta, shipped parent-ward.

    Plain data only (pickles through the process pool and serializes
    into checkpoints if ever needed).
    """

    origin: str
    pid: int
    #: Metric deltas: ``(kind, name, sorted label items, payload)``.
    #: Counters/gauges carry a number payload; histograms carry their
    #: :meth:`~repro.obs.metrics.Histogram.state` dict.
    metrics: List[Tuple[str, str, Tuple[Tuple[str, str], ...], object]] = \
        field(default_factory=list)
    #: Flat span-aggregate deltas (``name -> {count, total_s}``).
    spans: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Wall-clock timeline events ``(name, start_epoch_s, dur_s,
    #: depth)`` -- empty unless trace capture is on.
    events: List[Tuple[str, float, float, int]] = field(default_factory=list)


class RegistryShipper:
    """Worker-side delta tracker over the process registry.

    Successive :meth:`collect` calls return only what changed since the
    previous call, so a worker that runs many shards ships each unit of
    work exactly once.  Histogram deltas are reconstructed from bucket
    count differences, which is exact; the min/max shipped are the
    worker's running extremes, whose merge (min-of-mins, max-of-maxes)
    is still the true global extreme.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else \
            obs_metrics.REGISTRY
        self._counters: Dict[str, float] = {}
        self._hists: Dict[str, Dict] = {}
        self._gauges: Dict[str, int] = {}
        self._spans: Dict[str, Dict[str, float]] = {}

    def collect(self, origin: str) -> ShardTelemetry:
        telemetry = ShardTelemetry(origin=origin, pid=os.getpid())
        for metric in self.registry.metrics():
            key = format_key(metric.name, metric.labels)
            labels = tuple(sorted(metric.labels.items()))
            if isinstance(metric, Counter):
                delta = metric.value - self._counters.get(key, 0)
                self._counters[key] = metric.value
                if delta:
                    telemetry.metrics.append(
                        ("counter", metric.name, labels, delta))
            elif isinstance(metric, Histogram):
                state = metric.state()
                delta = _hist_delta(self._hists.get(key), state)
                self._hists[key] = state
                if delta["count"]:
                    telemetry.metrics.append(
                        ("histogram", metric.name, labels, delta))
            elif isinstance(metric, Gauge):
                # Ship only gauges this worker actually touched since
                # the last shipment: a forked worker inherits the
                # parent's registry (including already-merged
                # ``shard=``-labeled gauges), and re-shipping those
                # untouched inheritances would pollute the merge.
                if metric.version != self._gauges.get(key):
                    telemetry.metrics.append(
                        ("gauge", metric.name, labels, metric.value))
                self._gauges[key] = metric.version
        for name, entry in tracing.aggregates().items():
            before = self._spans.get(name, {"count": 0, "total_s": 0.0})
            delta = {
                "count": entry["count"] - before["count"],
                "total_s": entry["total_s"] - before["total_s"],
            }
            self._spans[name] = {"count": entry["count"],
                                 "total_s": entry["total_s"]}
            if delta["count"]:
                telemetry.spans[name] = delta
        if tracing.events_enabled():
            telemetry.events = tracing.drain_events()
        return telemetry


def _hist_delta(before: Optional[Dict], after: Dict) -> Dict:
    """Bucket-exact difference of two histogram states."""
    if before is None:
        return dict(after)
    buckets = {}
    for key, n in after["buckets"].items():
        d = n - before["buckets"].get(key, 0)
        if d:
            buckets[key] = d
    return {
        "count": after["count"] - before["count"],
        "total": after["total"] - before["total"],
        # Window extremes are unknowable from running state; the
        # running extremes are safe to merge (see class docstring).
        "min": after["min"],
        "max": after["max"],
        "buckets": buckets,
    }


def merge_shard_telemetry(
    telemetry: ShardTelemetry,
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Fold one shipped shard delta into this process's registry, span
    aggregates, and (when enabled) the trace-event collector."""
    registry = registry if registry is not None else obs_metrics.REGISTRY
    for kind, name, label_items, payload in telemetry.metrics:
        labels = dict(label_items)
        if kind == "counter":
            registry.counter(name, **labels).inc(payload)
        elif kind == "histogram":
            registry.histogram(name, **labels).merge_state(payload)
        elif kind == "gauge":
            # Gauges are point-in-time per process: a sum or last-set
            # would misreport, so shard gauges keep their origin label
            # (overriding any shard label inherited across a fork).
            labels["shard"] = telemetry.origin
            registry.gauge(name, **labels).set(payload)
    if telemetry.spans:
        tracing.merge_aggregates(telemetry.spans)
    if telemetry.events:
        from repro.obs import export

        export.ingest_span_events(telemetry.events, pid=telemetry.pid)


def record_resource_usage(
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, float]:
    """Stamp ``run.peak_rss_bytes`` / ``run.cpu_seconds`` gauges for
    this process (self + reaped children) and return the values."""
    registry = registry if registry is not None else obs_metrics.REGISTRY
    if resource is None:  # pragma: no cover - non-POSIX fallback
        return {}
    own = resource.getrusage(resource.RUSAGE_SELF)
    kids = resource.getrusage(resource.RUSAGE_CHILDREN)
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    scale = 1 if sys.platform == "darwin" else 1024
    peak_rss = max(own.ru_maxrss, kids.ru_maxrss) * scale
    cpu = (own.ru_utime + own.ru_stime + kids.ru_utime + kids.ru_stime)
    registry.gauge("run.peak_rss_bytes").set(peak_rss)
    registry.gauge("run.cpu_seconds").set(cpu)
    return {"run.peak_rss_bytes": peak_rss, "run.cpu_seconds": cpu}
