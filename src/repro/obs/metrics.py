"""Process-wide metrics registry: counters, gauges, streaming histograms.

Every metric is identified by a dotted name plus an optional set of
string labels (``counter("pathfinder.conflicts", circuit="c432")``).
Lookups are memoized, so the idiomatic pattern for hot code is to
resolve the metric object once and call ``inc()``/``observe()`` on the
plain Python object -- an attribute update, no dictionary traffic.

Counters are monotone accumulators (ints or floats), gauges hold the
last value set, and histograms keep streaming summaries (count, sum,
min, max) plus power-of-two magnitude buckets from which approximate
percentiles are read back.  ``snapshot()`` flattens the whole registry
into a JSON-serializable dict keyed ``name`` or ``name{k=v,...}``.

A single process-wide default registry lives at :data:`REGISTRY`; the
module-level ``counter``/``gauge``/``histogram``/``snapshot``/``reset``
helpers operate on it.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Tuple, Union

Number = Union[int, float]

#: (name, sorted label items) -> metric instance key.
_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _labels_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_key(name: str, labels: Dict[str, str]) -> str:
    """Human/JSON form: ``name`` or ``name{k=v,k2=v2}`` (sorted keys)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in _labels_key(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing accumulator."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = labels
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def as_value(self) -> Number:
        return self.value


class Gauge:
    """Holds the most recently set value.

    ``version`` counts writes: the telemetry shipper uses it to tell a
    gauge this process actually touched from one inherited untouched
    across a ``fork`` (the value alone cannot distinguish the two).
    """

    __slots__ = ("name", "labels", "value", "version")

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = labels
        self.value: Number = 0
        self.version: int = 0

    def set(self, value: Number) -> None:
        self.value = value
        self.version += 1

    def inc(self, amount: Number = 1) -> None:
        self.value += amount
        self.version += 1

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount
        self.version += 1

    def as_value(self) -> Number:
        return self.value


class Histogram:
    """Streaming summary of observed values.

    Exact count/sum/min/max; approximate percentiles from power-of-two
    magnitude buckets (each observation lands in the bucket of its
    binary exponent, so relative bucket error is bounded by 2x -- ample
    for timing breakdowns spanning orders of magnitude).
    """

    __slots__ = ("name", "labels", "count", "total", "vmin", "vmax", "buckets")

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        #: binary exponent -> observation count (exponent None for <= 0).
        self.buckets: Dict[Optional[int], int] = {}

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        exponent = math.frexp(value)[1] if value > 0.0 else None
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (0..100) by fixed-bucket linear
        interpolation: the rank's position *within* its power-of-two
        bucket interpolates between the bucket edges, clamped to the
        exactly-tracked ``[vmin, vmax]``."""
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(self.count * q / 100.0))
        seen = 0
        ordered = sorted(
            self.buckets.items(), key=lambda kv: -math.inf if kv[0] is None else kv[0]
        )
        for exponent, n in ordered:
            if seen + n >= rank:
                if exponent is None:
                    lower, upper = min(self.vmin, 0.0), 0.0
                else:
                    # frexp puts v in [2^(e-1), 2^e).
                    lower = math.ldexp(1.0, exponent - 1)
                    upper = math.ldexp(1.0, exponent)
                # Clamp the interpolation edges to the exactly-tracked
                # extremes before interpolating: every observation in
                # this bucket lies inside [vmin, vmax], so the full
                # power-of-two span would otherwise place the estimate
                # outside any observed value (e.g. p99 above the true
                # maximum).  The interval stays non-empty because the
                # bucket holds at least one observation.
                lower = max(lower, self.vmin)
                upper = min(upper, self.vmax)
                fraction = (rank - seen) / n
                estimate = lower + fraction * (upper - lower)
                return min(self.vmax, max(self.vmin, estimate))
            seen += n
        return self.vmax

    def as_value(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p90": 0.0, "p95": 0.0,
                    "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    # -- cross-process shipping (repro.obs.aggregate) ------------------
    def state(self) -> Dict[str, object]:
        """Picklable/JSON-safe internal state for shard shipping."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.vmin if self.count else None,
            "max": self.vmax if self.count else None,
            "buckets": {
                "none" if exponent is None else str(exponent): n
                for exponent, n in self.buckets.items()
            },
        }

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold another histogram's :meth:`state` into this one; bucket
        counts add exactly, so merged percentiles equal what one
        process observing both streams would report."""
        count = int(state["count"])
        if not count:
            return
        self.count += count
        self.total += float(state["total"])
        self.vmin = min(self.vmin, float(state["min"]))
        self.vmax = max(self.vmax, float(state["max"]))
        for key, n in state["buckets"].items():
            exponent = None if key == "none" else int(key)
            self.buckets[exponent] = self.buckets.get(exponent, 0) + int(n)


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Registry of named metrics; creation is thread-safe and memoized.

    Updates on the returned metric objects are plain attribute writes
    (atomic enough under the GIL for counting); only registration takes
    the lock.
    """

    def __init__(self):
        self._metrics: Dict[_Key, Metric] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, labels: Dict[str, str]) -> Metric:
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = cls(name, dict(labels))
                    self._metrics[key] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {format_key(name, labels)} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._get(Histogram, name, labels)

    # ------------------------------------------------------------------
    def metrics(self) -> List[Metric]:
        return list(self._metrics.values())

    def snapshot(self) -> Dict[str, object]:
        """Flat JSON-serializable view, sorted by key."""
        out: Dict[str, object] = {}
        for metric in self._metrics.values():
            out[format_key(metric.name, metric.labels)] = metric.as_value()
        return dict(sorted(out.items()))

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


#: The process-wide default registry.
REGISTRY = MetricsRegistry()


def counter(name: str, **labels: str) -> Counter:
    return REGISTRY.counter(name, **labels)


def gauge(name: str, **labels: str) -> Gauge:
    return REGISTRY.gauge(name, **labels)


def histogram(name: str, **labels: str) -> Histogram:
    return REGISTRY.histogram(name, **labels)


def snapshot() -> Dict[str, object]:
    return REGISTRY.snapshot()


def reset() -> None:
    REGISTRY.reset()
