"""Nestable span tracing with a near-zero disabled path.

``span("pathfinder.justify")`` returns a context manager.  When tracing
is *disabled* (the default) it returns one shared no-op singleton --
no allocation, no clock read, no stack bookkeeping -- so hot search
loops can be instrumented unconditionally.  When *enabled* each span
reads ``perf_counter`` on entry/exit and accumulates (count, total
seconds) into an aggregate tree keyed by the nesting path, one node per
distinct (parent, name) pair; a span name re-entered under the same
parent aggregates into the same node rather than growing the tree.

The tree is process-wide with a thread-local span stack, matching the
metrics registry's process-wide model.  Read it back with
:func:`tree` (root node), :func:`aggregates` (flat per-name dict for
JSON export) or :func:`render` (indented text for ``--profile``).
"""

from __future__ import annotations

import threading
from time import perf_counter, time
from typing import Dict, List, Optional, Tuple

_enabled = False

#: When set (with tracing enabled), every span exit also appends a
#: wall-clock timeline event ``(name, start_epoch_s, duration_s,
#: depth)`` to :data:`_events` -- the raw material for Chrome
#: trace-event export (:mod:`repro.obs.export`).  Epoch time is used
#: because trace lanes from different processes must share a clock;
#: the aggregate tree keeps using ``perf_counter`` for precision.
_capture_events = False

#: Captured timeline events (drained by :func:`drain_events`).
TraceEvent = Tuple[str, float, float, int]
_events: List[TraceEvent] = []

#: Span aggregates merged from other processes (shard telemetry);
#: folded into :func:`aggregates` under their flat names.
_foreign: Dict[str, Dict[str, float]] = {}


class SpanNode:
    """Aggregate timing of one span name at one position in the tree."""

    __slots__ = ("name", "count", "total", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.children: Dict[str, "SpanNode"] = {}

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = SpanNode(name)
            self.children[name] = node
        return node

    @property
    def self_total(self) -> float:
        """Time not attributed to any child span."""
        return self.total - sum(c.total for c in self.children.values())

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.total / self.count if self.count else 0.0,
        }
        if self.children:
            out["children"] = {
                name: child.as_dict() for name, child in self.children.items()
            }
        return out


_root = SpanNode("")
_local = threading.local()


def _stack() -> List[SpanNode]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = [_root]
        _local.stack = stack
    return stack


class Span:
    """A live (enabled) span; use via :func:`span`."""

    __slots__ = ("name", "_start", "_node", "_wall")

    def __init__(self, name: str):
        self.name = name

    def __enter__(self) -> "Span":
        stack = _stack()
        self._node = stack[-1].child(self.name)
        stack.append(self._node)
        self._wall = time() if _capture_events else 0.0
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = perf_counter() - self._start
        node = self._node
        node.count += 1
        node.total += elapsed
        stack = _stack()
        depth = len(stack) - 1
        if stack[-1] is node:
            stack.pop()
        if _capture_events:
            _events.append((self.name, self._wall, elapsed, depth))
        return False


class _NoopSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP = _NoopSpan()


def span(name: str):
    """Context manager timing a named region (no-op when disabled)."""
    if not _enabled:
        return _NOOP
    return Span(name)


def enable(on: bool = True) -> None:
    global _enabled
    _enabled = on


def enabled() -> bool:
    return _enabled


def capture_events(on: bool = True) -> None:
    """Also record wall-clock timeline events per span (implies the
    tracing cost of two extra clock reads per span)."""
    global _capture_events
    _capture_events = on
    if on and not _enabled:
        enable()


def events_enabled() -> bool:
    return _capture_events


def drain_events() -> List[TraceEvent]:
    """Return and clear the captured timeline events."""
    global _events
    out, _events = _events, []
    return out


def merge_aggregates(flat: Dict[str, Dict[str, float]]) -> None:
    """Fold another process's flat :func:`aggregates` dict into this
    one's view (shard telemetry shipping)."""
    for name, entry in flat.items():
        mine = _foreign.setdefault(name, {"count": 0, "total_s": 0.0})
        mine["count"] += entry.get("count", 0)
        mine["total_s"] += entry.get("total_s", 0.0)


def reset() -> None:
    """Drop all recorded spans and events (keeps the enabled flags)."""
    global _root, _events
    _root = SpanNode("")
    _local.stack = [_root]
    _events = []
    _foreign.clear()


def tree() -> SpanNode:
    """The root of the aggregate span tree (its own fields are unused)."""
    return _root


def aggregates() -> Dict[str, Dict[str, float]]:
    """Flat per-name totals merged across tree positions.

    Keys are span names (``pathfinder.justify``); values carry
    ``count`` / ``total_s`` / ``mean_s``.  Suitable for JSON export
    next to a metrics snapshot.
    """
    merged: Dict[str, Dict[str, float]] = {}

    def visit(node: SpanNode) -> None:
        for child in node.children.values():
            entry = merged.setdefault(
                child.name, {"count": 0, "total_s": 0.0, "mean_s": 0.0}
            )
            entry["count"] += child.count
            entry["total_s"] += child.total
            visit(child)

    visit(_root)
    for name, entry in _foreign.items():
        mine = merged.setdefault(
            name, {"count": 0, "total_s": 0.0, "mean_s": 0.0}
        )
        mine["count"] += entry["count"]
        mine["total_s"] += entry["total_s"]
    for entry in merged.values():
        if entry["count"]:
            entry["mean_s"] = entry["total_s"] / entry["count"]
    return dict(sorted(merged.items()))


def render(node: Optional[SpanNode] = None, min_fraction: float = 0.0) -> str:
    """Indented text rendering of the span tree.

    ``min_fraction`` hides nodes cheaper than that fraction of their
    root's total (0 shows everything).
    """
    root = node if node is not None else _root
    lines: List[str] = ["span tree (total seconds, calls):"]
    roots_total = sum(c.total for c in root.children.values()) or 1.0

    def visit(n: SpanNode, depth: int) -> None:
        for child in sorted(n.children.values(), key=lambda c: -c.total):
            if child.total / roots_total < min_fraction:
                continue
            pad = "  " * depth
            lines.append(
                f"{pad}{child.name:<{max(1, 40 - 2 * depth)}s} "
                f"{child.total:10.4f}s  x{child.count}"
            )
            visit(child, depth + 1)

    visit(root, 1)
    if len(lines) == 1:
        lines.append("  (no spans recorded -- was tracing enabled?)")
    return "\n".join(lines)
