"""Chrome trace-event / Perfetto JSON export of the span timeline.

``--trace-json FILE`` turns a run -- in particular a supervised
parallel run -- into a timeline loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``:

* one lane (trace "process") per OS process: the parent plus each
  pool worker, named ``parent`` / ``worker-<pid>`` via metadata
  events;
* one complete event (``"ph": "X"``) per captured span, with
  microsecond wall-clock timestamps so the lanes align across
  processes;
* instant events (``"ph": "i"``) for resilience incidents -- worker
  crash, shard timeout, retry, serial fallback, checkpoint write --
  emitted by the supervisor, so a recovery is visible as a mark on
  the timeline right where the lane goes quiet.

The output is the JSON object form of the trace-event format
(``{"traceEvents": [...]}``) described in the Trace Event Format
spec; every event carries the required ``name``/``ph``/``ts``/``pid``
/``tid`` fields.

The collector is process-wide and disabled by default (zero cost).
Enabling it also turns on span event capture in
:mod:`repro.obs.tracing`; worker-side events arrive via shard
telemetry (:mod:`repro.obs.aggregate`) and land on the worker's lane.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import tracing

_collector: Optional["TraceCollector"] = None


class TraceCollector:
    """Accumulates trace events; one instance per enabled run."""

    def __init__(self):
        self.events: List[Dict] = []
        self._named_pids: Dict[int, str] = {}
        self.name_process(os.getpid(), "parent")

    # ------------------------------------------------------------------
    def name_process(self, pid: int, name: str) -> None:
        if self._named_pids.get(pid) == name:
            return
        self._named_pids[pid] = name
        self.events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": name},
        })

    def _ensure_named(self, pid: int) -> None:
        if pid not in self._named_pids:
            self.name_process(pid, f"worker-{pid}")

    # ------------------------------------------------------------------
    def add_complete(self, name: str, start_epoch_s: float, dur_s: float,
                     pid: Optional[int] = None, tid: int = 0) -> None:
        pid = pid if pid is not None else os.getpid()
        self._ensure_named(pid)
        self.events.append({
            "name": name,
            "ph": "X",
            "ts": start_epoch_s * 1e6,
            "dur": max(dur_s, 0.0) * 1e6,
            "pid": pid,
            "tid": tid,
        })

    def add_instant(self, name: str, ts_epoch_s: Optional[float] = None,
                    pid: Optional[int] = None,
                    args: Optional[Dict] = None) -> None:
        pid = pid if pid is not None else os.getpid()
        self._ensure_named(pid)
        event = {
            "name": name,
            "ph": "i",
            "ts": (ts_epoch_s if ts_epoch_s is not None else time.time())
                  * 1e6,
            "pid": pid,
            "tid": 0,
            "s": "g",  # global scope: draw the mark across all lanes
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def ingest_span_events(
        self,
        events: Sequence[Tuple[str, float, float, int]],
        pid: Optional[int] = None,
    ) -> None:
        """Fold raw :mod:`repro.obs.tracing` timeline events in."""
        for name, start, dur, _depth in events:
            self.add_complete(name, start, dur, pid=pid)

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict:
        return {
            "traceEvents": sorted(
                self.events,
                key=lambda e: (0 if e["ph"] == "M" else 1, e.get("ts", 0.0)),
            ),
            "displayTimeUnit": "ms",
        }

    def write(self, path: str) -> int:
        """Drain this process's pending span events and write the JSON
        trace; returns the event count."""
        self.ingest_span_events(tracing.drain_events())
        payload = self.as_dict()
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=1)
        return len(payload["traceEvents"])


# ----------------------------------------------------------------------
def enable() -> "TraceCollector":
    """Turn on trace collection (and span event capture) for this run."""
    global _collector
    if _collector is None:
        _collector = TraceCollector()
    tracing.capture_events(True)
    return _collector


def enabled() -> bool:
    return _collector is not None


def collector() -> Optional[TraceCollector]:
    return _collector


def reset() -> None:
    global _collector
    _collector = None
    tracing.capture_events(False)


def instant(name: str, **args) -> None:
    """Record an instant event if collection is enabled (no-op
    otherwise) -- the supervisor's incident hook."""
    if _collector is not None:
        _collector.add_instant(name, args=args or None)


def ingest_span_events(events, pid: Optional[int] = None) -> None:
    """Shard-telemetry hook: no-op unless collection is enabled."""
    if _collector is not None:
        _collector.ingest_span_events(events, pid=pid)
