"""Metrics-snapshot diffing and the perf-regression gate.

``repro obs diff A.json B.json`` compares two ``--metrics-json``
snapshots (A = baseline, B = candidate) field by field and prints the
percent deltas; ``--fail-on REGEX:PCT`` turns it into a CI tripwire
that exits non-zero when any field whose flattened key matches
``REGEX`` *increased* by more than ``PCT`` percent.  That gives the
ROADMAP's before/after proof rule a tool instead of a convention: an
optimization PR gates on ``pathfinder.extensions_tried`` /
``delaycalc.arc_evaluations`` staying put, a perf job gates on
``spans.pathfinder.justify.total_s`` with a generous threshold.

Flattened keys: scalar metrics keep their snapshot key
(``pathfinder.conflicts``), dict-valued entries (histograms, spans)
append the field (``delaycalc.arc_ms.p95``,
``spans.pathfinder.justify.count``), so tail latency is gateable, not
just means.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: Exit code when a --fail-on rule trips (distinct from usage errors).
EXIT_REGRESSION = 4


@dataclass(frozen=True)
class DiffEntry:
    """One flattened field's before/after pair."""

    key: str
    before: Optional[float]
    after: Optional[float]

    @property
    def delta(self) -> Optional[float]:
        if self.before is None or self.after is None:
            return None
        return self.after - self.before

    @property
    def pct(self) -> Optional[float]:
        """Percent change; None when undefined (new/missing key or a
        zero baseline with a nonzero candidate)."""
        if self.before is None or self.after is None:
            return None
        if self.before == 0:
            return 0.0 if self.after == 0 else None
        return (self.after - self.before) / abs(self.before) * 100.0

    def describe(self) -> str:
        before = "-" if self.before is None else f"{self.before:g}"
        after = "-" if self.after is None else f"{self.after:g}"
        pct = self.pct
        if pct is None:
            tag = "new" if self.before is None else (
                "gone" if self.after is None else "+inf%")
        else:
            tag = f"{pct:+.1f}%"
        return f"{self.key:<56s} {before:>14s} -> {after:>14s}  {tag}"


@dataclass(frozen=True)
class FailRule:
    """One ``REGEX:PCT`` gate: match on the flattened key, trip when
    the increase exceeds the threshold percent."""

    pattern: re.Pattern
    threshold_pct: float

    def violated_by(self, entry: DiffEntry) -> bool:
        if not self.pattern.search(entry.key):
            return False
        pct = entry.pct
        if pct is None:
            # A key that appeared with a nonzero value, or grew from a
            # zero baseline, is an unbounded increase: trip.
            return (entry.after or 0) > (entry.before or 0)
        return pct > self.threshold_pct


def parse_fail_rule(spec: str) -> FailRule:
    """Parse ``REGEX:PCT`` (the *last* colon splits, so regexes may
    contain colons)."""
    pattern, sep, pct = spec.rpartition(":")
    if not sep or not pattern:
        raise ValueError(
            f"--fail-on expects REGEX:PCT (e.g. 'pathfinder\\.:10'), "
            f"got {spec!r}")
    try:
        threshold = float(pct)
    except ValueError:
        raise ValueError(f"--fail-on threshold must be a number: {spec!r}")
    return FailRule(re.compile(pattern), threshold)


def load_snapshot(path: str) -> Dict:
    with open(path) as handle:
        return json.load(handle)


def flatten(snapshot: Dict) -> Dict[str, float]:
    """Flatten a snapshot into dotted scalar keys (see module doc)."""
    flat: Dict[str, float] = {}

    def put(key: str, value) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return
        flat[key] = float(value)

    for key, value in snapshot.items():
        if key == "spans" and isinstance(value, dict):
            for name, entry in value.items():
                for fname, fvalue in entry.items():
                    put(f"spans.{name}.{fname}", fvalue)
        elif isinstance(value, dict):
            for fname, fvalue in value.items():
                put(f"{key}.{fname}", fvalue)
        else:
            put(key, value)
    return flat


def diff_snapshots(before: Dict, after: Dict) -> List[DiffEntry]:
    """Entries for the union of flattened keys, sorted by key."""
    flat_before = flatten(before)
    flat_after = flatten(after)
    keys = sorted(set(flat_before) | set(flat_after))
    return [DiffEntry(key, flat_before.get(key), flat_after.get(key))
            for key in keys]


def violations(entries: Sequence[DiffEntry],
               rules: Sequence[FailRule]) -> List[Tuple[DiffEntry, FailRule]]:
    out = []
    for entry in entries:
        for rule in rules:
            if rule.violated_by(entry):
                out.append((entry, rule))
    return out


def format_diff(entries: Sequence[DiffEntry], only_changed: bool = True,
                key_filter: Optional[str] = None) -> str:
    pattern = re.compile(key_filter) if key_filter else None
    lines = []
    for entry in entries:
        if pattern is not None and not pattern.search(entry.key):
            continue
        if only_changed and entry.delta == 0:
            continue
        lines.append(entry.describe())
    if not lines:
        return "(no differences)"
    return "\n".join(lines)
