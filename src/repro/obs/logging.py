"""Structured, level-filtered logging with an optional JSONL sink.

Deliberately independent of the stdlib ``logging`` module: records are
flat dicts (``event`` plus keyword fields), the level check is a single
integer comparison so disabled levels cost nothing in hot code, and
configuration is one process-wide call::

    from repro.obs import get_logger, configure_logging

    configure_logging(level="debug", jsonl_path="run.log.jsonl")
    log = get_logger("repro.charlib")
    log.info("cache.hit", path=str(cache_path), key=digest)

The human sink (stderr by default) prints ``TIME LEVEL logger event
key=value ...``; the JSONL sink writes one ``json.dumps`` record per
line, round-trippable for later analysis.  The default level is
``warning`` so library code can log freely without polluting normal
runs.
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone
from typing import Dict, IO, Optional

DEBUG, INFO, WARNING, ERROR = 10, 20, 30, 40

LEVELS: Dict[str, int] = {
    "debug": DEBUG,
    "info": INFO,
    "warning": WARNING,
    "error": ERROR,
}

_LEVEL_NAMES = {v: k.upper() for k, v in LEVELS.items()}


class _Config:
    __slots__ = ("level", "stream", "jsonl")

    def __init__(self):
        self.level: int = WARNING
        self.stream: Optional[IO[str]] = None  # None = sys.stderr at call time
        self.jsonl: Optional[IO[str]] = None


_config = _Config()
_loggers: Dict[str, "Logger"] = {}


def configure(
    level: str = "info",
    stream: Optional[IO[str]] = None,
    jsonl_path: Optional[str] = None,
) -> None:
    """Set the process-wide level and sinks.

    ``stream`` overrides the human-readable sink (default stderr);
    ``jsonl_path`` opens (append) a JSONL sink, ``None`` closes any
    previous one.
    """
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r}; choose from {sorted(LEVELS)}")
    _config.level = LEVELS[level]
    _config.stream = stream
    if _config.jsonl is not None:
        _config.jsonl.close()
        _config.jsonl = None
    if jsonl_path is not None:
        _config.jsonl = open(jsonl_path, "a", encoding="utf-8")


def level() -> int:
    return _config.level


class Logger:
    """Named emitter of structured records."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    # ------------------------------------------------------------------
    def _emit(self, levelno: int, event: str, fields: Dict) -> None:
        record = {
            "ts": time.time(),
            "level": _LEVEL_NAMES[levelno],
            "logger": self.name,
            "event": event,
        }
        record.update(fields)
        if _config.jsonl is not None:
            _config.jsonl.write(json.dumps(record, default=str) + "\n")
            _config.jsonl.flush()
        stream = _config.stream
        if stream is None:
            import sys

            stream = sys.stderr
        stamp = datetime.fromtimestamp(record["ts"], tz=timezone.utc).strftime(
            "%H:%M:%S.%f"
        )[:-3]
        extras = " ".join(f"{k}={v}" for k, v in fields.items())
        line = f"{stamp} {record['level']:<7s} {self.name} {event}"
        stream.write(line + (f" {extras}" if extras else "") + "\n")

    def log(self, levelno: int, event: str, **fields) -> None:
        if levelno >= _config.level:
            self._emit(levelno, event, fields)

    def debug(self, event: str, **fields) -> None:
        if DEBUG >= _config.level:
            self._emit(DEBUG, event, fields)

    def info(self, event: str, **fields) -> None:
        if INFO >= _config.level:
            self._emit(INFO, event, fields)

    def warning(self, event: str, **fields) -> None:
        if WARNING >= _config.level:
            self._emit(WARNING, event, fields)

    def error(self, event: str, **fields) -> None:
        if ERROR >= _config.level:
            self._emit(ERROR, event, fields)

    def is_enabled(self, levelno: int) -> bool:
        return levelno >= _config.level


def get_logger(name: str) -> Logger:
    logger = _loggers.get(name)
    if logger is None:
        logger = _loggers[name] = Logger(name)
    return logger
