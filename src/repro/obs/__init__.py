"""Observability substrate: structured logging, metrics, span tracing.

Three cooperating pieces, all process-wide:

* :mod:`repro.obs.logging` -- structured, level-filtered records with a
  human sink and an optional JSONL sink;
* :mod:`repro.obs.metrics` -- registry of counters, gauges and streaming
  histograms with labels (``pathfinder.conflicts{circuit=c432}``);
* :mod:`repro.obs.tracing` -- nestable ``span("justify")`` context
  managers that compile to a shared no-op object while disabled, so the
  hot search loop pays ~zero overhead by default.

Typical driver usage (this is what ``repro.cli --profile`` does)::

    from repro import obs

    obs.reset()
    obs.tracing.enable()
    ...run the analysis...
    print(obs.tracing.render())
    json.dump(obs.snapshot(), open("metrics.json", "w"))

``snapshot()`` merges the metrics registry and the flat span aggregates
into one JSON-serializable dict: metric keys at the top level plus a
``"spans"`` entry mapping span names to count/total/mean seconds.
"""

from __future__ import annotations

from typing import Dict

from repro.obs import aggregate, diff, export, logging, metrics, progress, tracing
from repro.obs.logging import Logger, configure as configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    counter,
    gauge,
    histogram,
)
from repro.obs.tracing import span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Logger",
    "MetricsRegistry",
    "REGISTRY",
    "aggregate",
    "configure_logging",
    "counter",
    "diff",
    "export",
    "gauge",
    "get_logger",
    "histogram",
    "logging",
    "metrics",
    "progress",
    "reset",
    "snapshot",
    "span",
    "tracing",
]


def snapshot() -> Dict[str, object]:
    """Merged metrics + span aggregates, ready for ``json.dump``."""
    data: Dict[str, object] = dict(metrics.snapshot())
    data["spans"] = tracing.aggregates()
    return data


def reset() -> None:
    """Clear the metrics registry, the span tree, and any trace
    collector (one run's worth)."""
    metrics.reset()
    tracing.reset()
    export.reset()
