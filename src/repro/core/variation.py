"""Monte-Carlo delay variation analysis (extension).

The paper's conclusions point at process variation as the next step for
the delay model.  This module adds the classic statistical layer on top
of the vector-resolved path delays: every gate traversal's delay is
scaled by a global (inter-die) factor shared across the circuit and an
independent local (intra-die) factor, both lognormal, and path-arrival
distributions / criticality probabilities are estimated by sampling.

Because the true-path finder reports the worst *sensitization vector*
per course, the statistics here answer the question a vector-blind tool
cannot: "which path is most likely critical, accounting for both the
vector dependence and the process spread?"
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.path import TimedPath


@dataclass(frozen=True)
class VariationSpec:
    """Lognormal delay-variation magnitudes (sigma of ln-scale)."""

    sigma_local: float = 0.05
    sigma_global: float = 0.03
    seed: int = 0

    def __post_init__(self):
        if self.sigma_local < 0 or self.sigma_global < 0:
            raise ValueError("sigmas must be non-negative")


def _polarity(path: TimedPath):
    return max(path.polarities(), key=lambda p: p.arrival)


def sample_path_arrivals(
    paths: Sequence[TimedPath],
    spec: VariationSpec,
    n_samples: int = 1000,
) -> np.ndarray:
    """(n_samples, n_paths) matrix of sampled arrivals.

    Gate instances shared between paths receive the *same* local factor
    within each sample (correlated through the gate, as physically
    appropriate), and all gates share the per-sample global factor.
    """
    if not paths:
        raise ValueError("no paths to sample")
    rng = np.random.default_rng(spec.seed)
    gate_names = sorted(
        {step.gate_name for path in paths for step in path.steps}
    )
    gate_index = {name: k for k, name in enumerate(gate_names)}

    nominal = []
    for path in paths:
        polarity = _polarity(path)
        nominal.append(
            (np.asarray(polarity.gate_delays),
             np.asarray([gate_index[s.gate_name] for s in path.steps])))

    global_factors = np.exp(
        rng.normal(0.0, spec.sigma_global, size=n_samples)
    )
    local_factors = np.exp(
        rng.normal(0.0, spec.sigma_local, size=(n_samples, len(gate_names)))
    )
    out = np.empty((n_samples, len(paths)))
    for p, (delays, indices) in enumerate(nominal):
        per_sample = local_factors[:, indices] * delays
        out[:, p] = global_factors * per_sample.sum(axis=1)
    return out


@dataclass
class PathStatistics:
    """Distribution summary of one path's arrival."""

    nominal: float
    mean: float
    std: float
    q50: float
    q95: float
    q997: float


def path_statistics(
    paths: Sequence[TimedPath],
    spec: VariationSpec,
    n_samples: int = 2000,
) -> List[PathStatistics]:
    samples = sample_path_arrivals(paths, spec, n_samples)
    stats = []
    for k, path in enumerate(paths):
        column = samples[:, k]
        stats.append(
            PathStatistics(
                nominal=_polarity(path).arrival,
                mean=float(column.mean()),
                std=float(column.std()),
                q50=float(np.quantile(column, 0.50)),
                q95=float(np.quantile(column, 0.95)),
                q997=float(np.quantile(column, 0.997)),
            )
        )
    return stats


def criticality(
    paths: Sequence[TimedPath],
    spec: VariationSpec,
    n_samples: int = 2000,
) -> Dict[Tuple[str, ...], float]:
    """Probability that each course is the circuit's critical path."""
    samples = sample_path_arrivals(paths, spec, n_samples)
    winners = np.argmax(samples, axis=1)
    counts: Dict[Tuple[str, ...], float] = {}
    for k, path in enumerate(paths):
        share = float(np.mean(winners == k))
        counts[path.course] = counts.get(path.course, 0.0) + share
    return counts


def timing_yield(
    paths: Sequence[TimedPath],
    spec: VariationSpec,
    required_time: float,
    n_samples: int = 2000,
) -> float:
    """Fraction of samples in which *every* path meets the required
    time (the statistical analogue of a slack report)."""
    samples = sample_path_arrivals(paths, spec, n_samples)
    worst = samples.max(axis=1)
    return float(np.mean(worst <= required_time))
