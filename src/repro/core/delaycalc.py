"""Vector-resolved delay accumulation along a path.

Uses the characterized polynomial arcs: delay and output slew of each
traversed gate are looked up per *(cell, pin, sensitization vector,
input edge)* at the gate's actual equivalent fanout, with the slew
propagated from the previous stage -- "the output transition time ...
is required to compute the propagation delay of the next gate within
the path".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.charlib.fanout import WireLoadModel, output_load
from repro.charlib.store import BLIND, CharacterizedLibrary
from repro.core.engine import EngineCircuit, EngineGate
from repro.obs.tracing import span

#: Default input transition time applied at primary inputs (seconds).
DEFAULT_INPUT_SLEW = 40e-12


class DelayCalculator:
    """Per-arc delay evaluation bound to one circuit and corner."""

    def __init__(
        self,
        ec: EngineCircuit,
        charlib: CharacterizedLibrary,
        temp: float = 25.0,
        vdd: Optional[float] = None,
        input_slew: float = DEFAULT_INPUT_SLEW,
        vector_blind: bool = False,
        wire: Optional[WireLoadModel] = None,
    ):
        self.ec = ec
        self.charlib = charlib
        self.temp = temp
        self.vdd = vdd if vdd is not None else self._nominal_vdd()
        self.input_slew = input_slew
        self.vector_blind = vector_blind
        self.wire = wire
        #: Model evaluations served (plain attribute -- the search loop
        #: is too hot for registry traffic; callers publish the delta
        #: to ``delaycalc.arc_evaluations`` at the end of a run).
        self.arc_evaluations: int = 0
        #: Pre-resolved equivalent fanout per gate index.
        self.fo: List[float] = []
        circuit = ec.circuit
        for gate in ec.gates:
            load = output_load(circuit, gate.inst, charlib, wire=wire)
            self.fo.append(load / charlib.mean_cap(gate.cell.name))
        self._worst_delay_cache: Dict[int, float] = {}

    def _nominal_vdd(self) -> float:
        from repro.tech.presets import TECHNOLOGIES

        for tech in TECHNOLOGIES.values():
            if tech.name == self.charlib.tech_name:
                return tech.vdd
        raise ValueError(
            f"cannot infer nominal VDD for technology {self.charlib.tech_name!r}; "
            "pass vdd explicitly"
        )

    # ------------------------------------------------------------------
    def arc_timing(
        self,
        gate: EngineGate,
        pin: str,
        vector_id: str,
        input_rising: bool,
        output_rising: bool,
        t_in: float,
    ) -> Tuple[float, float]:
        """(delay, output slew) of one traversal, in seconds."""
        lookup_id = BLIND if self.vector_blind else vector_id
        self.arc_evaluations += 1
        arc = self.charlib.arc(
            gate.cell.name, pin, lookup_id, input_rising, output_rising
        )
        fo = self.fo[gate.index]
        delay = arc.delay(fo, t_in, self.temp, self.vdd)
        slew = arc.slew(fo, t_in, self.temp, self.vdd)
        return delay, slew

    def worst_gate_delay(self, gate: EngineGate) -> float:
        """Upper bound on any traversal delay of this gate (used for
        search pruning and for the baseline's structural enumeration)."""
        cached = self._worst_delay_cache.get(gate.index)
        if cached is not None:
            return cached
        worst = 0.0
        t_in = 4 * self.input_slew  # pessimistic slew
        for pin, options in gate.options.items():
            for opt in options:
                vector_id = BLIND if self.vector_blind else opt.vector.vector_id
                for input_rising in (True, False):
                    try:
                        arc = self.charlib.arc(
                            gate.cell.name, pin, vector_id, input_rising,
                            input_rising ^ opt.inverting,
                        )
                    except KeyError:
                        continue
                    worst = max(
                        worst,
                        arc.delay(self.fo[gate.index], t_in, self.temp, self.vdd),
                    )
        self._worst_delay_cache[gate.index] = worst
        return worst

    def remaining_bounds(self) -> List[float]:
        """Per-net upper bound on the worst delay from that net to any
        primary output (reverse-topological longest path with
        worst-case gate delays).  Admissible for N-worst pruning."""
        with span("delaycalc.remaining_bounds"):
            bounds = [0.0] * self.ec.num_nets
            for gate in reversed(self.ec.gates):
                worst = self.worst_gate_delay(gate)
                downstream = bounds[gate.output_net] + worst
                for net in gate.input_nets:
                    if downstream > bounds[net]:
                        bounds[net] = downstream
            return bounds
