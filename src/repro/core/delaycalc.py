"""Vector-resolved delay accumulation along a path.

Uses the characterized polynomial arcs: delay and output slew of each
traversed gate are looked up per *(cell, pin, sensitization vector,
input edge)* at the gate's actual equivalent fanout, with the slew
propagated from the previous stage -- "the output transition time ...
is required to compute the propagation delay of the next gate within
the path".

Hot-path layout: arc *resolution* (the ``charlib.arc`` dict-chain
lookup) is memoized per *(cell, pin, vector, edges)* with hit/miss
counters, so each distinct arc is resolved once per search instead of
once per evaluation.  The N-worst pruning bound maximizes each gate's
fitted delay over the whole *achievable* slew domain: propagated slews
on degraded chains exceed any fixed pessimistic input slew, so bounding
the arc delay at a single slew point is not admissible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.charlib.fanout import WireLoadModel, output_load
from repro.charlib.model import DelayModel
from repro.charlib.store import BLIND, CharacterizedLibrary, TimingArc
from repro.core.engine import EngineCircuit, EngineGate
from repro.core.tgraph import PruneBounds
from repro.obs.logging import get_logger
from repro.obs.tracing import span
from repro.resilience.errors import ConfigError, MissingArcFailure

if TYPE_CHECKING:  # tarrays imports from this module; keep the cycle lazy
    from repro.core.tarrays import CompiledTables, TimingArrays

_log = get_logger("repro.delaycalc")

#: Default input transition time applied at primary inputs (seconds).
DEFAULT_INPUT_SLEW = 40e-12

#: Recognized missing-arc policies: ``error`` raises
#: :class:`MissingArcsError` the moment a traversal needs an arc the
#: library cannot resolve; ``warn-substitute`` falls back to the
#: nearest characterized arc of the same cell (see
#: :meth:`DelayCalculator._substitute_arc`), logs once per arc, and
#: counts the substitution in ``delaycalc.arc_substitutions``.
MISSING_ARC_POLICIES = ("error", "warn-substitute")

#: Evaluation points per sweep when maximizing a fitted model over the
#: bounding slew domain.  The fitted surfaces are low-order in t_in, so
#: a dense linear sweep tracks the true maximum closely.
BOUND_SLEW_SAMPLES = 17

#: Fixed-point rounds allowed when raising the achievable-slew ceiling
#: above the characterization grid.
_SLEW_CEILING_ROUNDS = 6


class MissingArcsError(MissingArcFailure, LookupError):
    """A timing arc the analysis needs does not resolve in the
    characterized library (and the active policy forbids substitution).

    Subclasses both the resilience taxonomy (for CLI exit-code mapping)
    and :class:`LookupError` (the historical base, kept for callers
    that catch it as such)."""


def _model_max(model: DelayModel, fo: float, slews: Tuple[float, ...],
               temp: float, vdd: float) -> float:
    """Maximum of a fitted model over a sweep of input slews.

    Goes through the :class:`~repro.charlib.model.DelayModel` batch
    protocol, so polynomial and LUT libraries share one sweep path.
    """
    points = np.array([[fo, t_in, temp, vdd] for t_in in slews])
    return float(np.max(model.evaluate_many(points)))


class DelayCalculator:
    """Per-arc delay evaluation bound to one circuit and corner."""

    def __init__(
        self,
        ec: EngineCircuit,
        charlib: CharacterizedLibrary,
        temp: float = 25.0,
        vdd: Optional[float] = None,
        input_slew: float = DEFAULT_INPUT_SLEW,
        vector_blind: bool = False,
        wire: Optional[WireLoadModel] = None,
        arc_cache: bool = True,
        missing_arc_policy: str = "error",
        vectorize: bool = True,
        compiled: Optional["CompiledTables"] = None,
    ):
        if missing_arc_policy not in MISSING_ARC_POLICIES:
            # ConfigError (EX_CONFIG) rather than a raw ValueError: a bad
            # flag value must exit through the resilience taxonomy, not
            # as an unclassified traceback.
            raise ConfigError(
                f"unknown missing-arc policy {missing_arc_policy!r}; "
                f"expected one of {MISSING_ARC_POLICIES}"
            )
        self.ec = ec
        self.charlib = charlib
        self.temp = temp
        self.vdd = vdd if vdd is not None else self._nominal_vdd()
        self.input_slew = input_slew
        self.vector_blind = vector_blind
        self.wire = wire
        self.missing_arc_policy = missing_arc_policy
        #: Route the sweep passes (GBA forward, backward required-time
        #: bound, slew fixed point) through the structure-of-arrays
        #: compilation in :mod:`repro.core.tarrays`.  Results are byte
        #: identical to the scalar passes (``--no-vectorize``).
        self.vectorize = bool(vectorize)
        #: Model evaluations served (plain attribute -- the search loop
        #: is too hot for registry traffic; callers publish the delta
        #: to ``delaycalc.arc_evaluations`` at the end of a run).
        self.arc_evaluations: int = 0
        #: Arc resolutions served from / missed by the memo (plain
        #: attributes for the same reason; published as
        #: ``delaycalc.arc_cache_hits`` / ``..._misses`` deltas).
        self.arc_cache_hits: int = 0
        self.arc_cache_misses: int = 0
        #: Traversals served by a nearest-arc fallback under the
        #: ``warn-substitute`` policy (published as
        #: ``delaycalc.arc_substitutions`` deltas).
        self.arc_substitutions: int = 0
        #: Pre-resolved equivalent fanout per gate index.
        self.fo: List[float] = []
        circuit = ec.circuit
        for gate in ec.gates:
            load = output_load(circuit, gate.inst, charlib, wire=wire)
            self.fo.append(load / charlib.mean_cap(gate.cell.name))
        self._arc_cache: Optional[Dict[Tuple[str, str, str, bool, bool], TimingArc]] = (
            {} if arc_cache else None
        )
        self._gate_arcs_cache: Dict[int, Tuple[TimingArc, ...]] = {}
        #: (gate index, pin) -> (resolved arcs, missing-arc descriptions).
        self._pin_arcs_cache: Dict[
            Tuple[int, str], Tuple[Tuple[TimingArc, ...], Tuple[str, ...]]
        ] = {}
        self._worst_delay_cache: Dict[int, float] = {}
        self._worst_arc_cache: Dict[Tuple[int, str], float] = {}
        self._bound_slews: Optional[Tuple[float, ...]] = None
        self._remaining_bounds: Optional[List[float]] = None
        self._required_bounds: Optional[List[float]] = None
        self._prune_bounds: Optional[PruneBounds] = None
        self._warned_cells: Set[str] = set()
        #: Requested-arc key -> substituted arc (warn-substitute policy).
        self._substitute_cache: Dict[
            Tuple[str, str, str, bool, bool], TimingArc
        ] = {}
        self._tarrays: Optional["TimingArrays"] = None
        self._worst_table_complete = False
        if compiled is not None:
            self.seed_tables(compiled)

    def _nominal_vdd(self) -> float:
        from repro.tech.presets import TECHNOLOGIES

        for tech in TECHNOLOGIES.values():
            if tech.name == self.charlib.tech_name:
                return tech.vdd
        raise ValueError(
            f"cannot infer nominal VDD for technology {self.charlib.tech_name!r}; "
            "pass vdd explicitly"
        )

    # ------------------------------------------------------------------
    def arc_timing(
        self,
        gate: EngineGate,
        pin: str,
        vector_id: str,
        input_rising: bool,
        output_rising: bool,
        t_in: float,
    ) -> Tuple[float, float]:
        """(delay, output slew) of one traversal, in seconds."""
        lookup_id = BLIND if self.vector_blind else vector_id
        self.arc_evaluations += 1
        cache = self._arc_cache
        if cache is None:
            arc = self._lookup_arc(
                gate.cell.name, pin, lookup_id, input_rising, output_rising
            )
        else:
            key = (gate.cell.name, pin, lookup_id, input_rising, output_rising)
            arc = cache.get(key)
            if arc is None:
                self.arc_cache_misses += 1
                arc = self._lookup_arc(
                    gate.cell.name, pin, lookup_id, input_rising, output_rising
                )
                cache[key] = arc
            else:
                self.arc_cache_hits += 1
        fo = self.fo[gate.index]
        delay = arc.delay(fo, t_in, self.temp, self.vdd)
        slew = arc.slew(fo, t_in, self.temp, self.vdd)
        return delay, slew

    # ------------------------------------------------------------------
    def _lookup_arc(
        self, cell: str, pin: str, vector_id: str, input_rising: bool,
        output_rising: bool,
    ) -> TimingArc:
        """Library arc lookup routed through the missing-arc policy."""
        try:
            return self.charlib.arc(
                cell, pin, vector_id, input_rising, output_rising
            )
        except KeyError:
            if self.missing_arc_policy != "warn-substitute":
                raise MissingArcsError(
                    f"no timing arc for cell {cell!r} pin {pin!r} vector "
                    f"{vector_id!r} ({'r' if input_rising else 'f'}->"
                    f"{'R' if output_rising else 'F'}) in library "
                    f"{self.charlib.library_name!r} "
                    "(missing-arc policy: error)"
                ) from None
            substitute = self._substitute_arc(
                cell, pin, vector_id, input_rising, output_rising
            )
            if substitute is None:
                raise MissingArcsError(
                    f"cell {cell!r} has no characterized arc at all in "
                    f"library {self.charlib.library_name!r}; nothing to "
                    "substitute"
                ) from None
            return substitute

    def _substitute_arc(
        self, cell: str, pin: str, vector_id: str, input_rising: bool,
        output_rising: bool,
    ) -> Optional[TimingArc]:
        """Nearest characterized arc of the same cell (warn-substitute
        policy): prefer the same pin, then the same input edge, then
        the same output edge, tie-broken on the arc key so the choice
        is deterministic across processes (serial and parallel runs
        must substitute identically).  Returns None only when the cell
        has no arcs at all.  Memoized per requested key; each distinct
        substituted resolution logs one warning and bumps
        ``arc_substitutions``.
        """
        key = (cell, pin, vector_id, input_rising, output_rising)
        cached = self._substitute_cache.get(key)
        if cached is not None:
            return cached
        best: Optional[TimingArc] = None
        best_rank: Tuple[int, str] = (-1, "")
        for arc in self.charlib.arcs():
            if arc.cell != cell:
                continue
            score = (
                (4 if arc.pin == pin else 0)
                + (2 if arc.input_rising == input_rising else 0)
                + (1 if arc.output_rising == output_rising else 0)
            )
            # Lexicographically smallest key wins among equals, so the
            # substitution is independent of library iteration order.
            if score > best_rank[0] or (
                score == best_rank[0] and arc.key < best_rank[1]
            ):
                best, best_rank = arc, (score, arc.key)
        if best is None:
            return None
        self._substitute_cache[key] = best
        self.arc_substitutions += 1
        _log.warning(
            "delaycalc.arc_substituted", cell=cell, pin=pin,
            vector=vector_id,
            edge=f"{'r' if input_rising else 'f'}"
                 f"{'R' if output_rising else 'F'}",
            substitute=best.key,
        )
        return best

    def _resolve_pin(
        self, gate: EngineGate, pin: str
    ) -> Tuple[Tuple[TimingArc, ...], Tuple[str, ...]]:
        """Resolve (and memoize) every timing arc entering through one
        pin: (resolved arcs, descriptions of the missing ones)."""
        key = (gate.index, pin)
        cached = self._pin_arcs_cache.get(key)
        if cached is not None:
            return cached
        arcs: List[TimingArc] = []
        seen: Set[str] = set()
        missing: List[str] = []
        for opt in gate.options[pin]:
            vector_id = BLIND if self.vector_blind else opt.vector.vector_id
            for input_rising in (True, False):
                try:
                    arc = self.charlib.arc(
                        gate.cell.name, pin, vector_id, input_rising,
                        input_rising ^ opt.inverting,
                    )
                except KeyError:
                    missing.append(
                        f"{pin}|{vector_id}|{'r' if input_rising else 'f'}"
                    )
                    if self.missing_arc_policy == "warn-substitute":
                        # Register the fallback arc so the pruning and
                        # GBA bounds cover what arc_timing will really
                        # evaluate for this traversal.
                        arc = self._substitute_arc(
                            gate.cell.name, pin, vector_id, input_rising,
                            input_rising ^ opt.inverting,
                        )
                        if arc is not None and arc.key not in seen:
                            seen.add(arc.key)
                            arcs.append(arc)
                    continue
                if arc.key not in seen:
                    seen.add(arc.key)
                    arcs.append(arc)
        result = (tuple(arcs), tuple(missing))
        self._pin_arcs_cache[key] = result
        return result

    def pin_arcs(self, gate: EngineGate, pin: str) -> Tuple[TimingArc, ...]:
        """Every resolvable timing arc entering one gate through one pin
        (vector x edge, deduplicated) -- the per-arc granularity the
        timing graph's backward pass bounds."""
        self.gate_arcs(gate)  # whole-gate validation + missing-arc logs
        return self._resolve_pin(gate, pin)[0]

    def gate_arcs(self, gate: EngineGate) -> Tuple[TimingArc, ...]:
        """Every resolvable timing arc of one gate (pin x vector x edge),
        deduplicated, cached per gate index.

        Missing arcs are reported through a structured log record once
        per cell -- vector-blind lookups miss arcs *by construction*
        (the blind library stores one output polarity per pin/edge), so
        those log at debug, anything else at warning.  A gate whose
        arcs are ALL missing would silently poison the pruning bound
        and the baseline's structural enumeration with a 0.0 worst
        delay, so it raises :class:`MissingArcsError` instead.
        """
        cached = self._gate_arcs_cache.get(gate.index)
        if cached is not None:
            return cached
        arcs: List[TimingArc] = []
        missing: List[str] = []
        for pin in gate.options:
            pin_resolved, pin_missing = self._resolve_pin(gate, pin)
            arcs.extend(pin_resolved)
            missing.extend(pin_missing)
        if missing and not arcs:
            _log.error(
                "gate.no_arcs", gate=gate.inst.name, cell=gate.cell.name,
                missing=len(missing), examples=missing[:4],
            )
            raise MissingArcsError(
                f"no timing arc of gate {gate.inst.name!r} "
                f"(cell {gate.cell.name!r}) resolves in library "
                f"{self.charlib.library_name!r}; missing {len(missing)} arcs "
                f"such as {missing[:4]}"
            )
        if missing and gate.cell.name not in self._warned_cells:
            self._warned_cells.add(gate.cell.name)
            report = _log.debug if self.vector_blind else _log.warning
            report(
                "gate.arcs_missing", cell=gate.cell.name, gate=gate.inst.name,
                missing=len(missing), resolved=len(arcs),
                examples=missing[:4], vector_blind=self.vector_blind,
            )
        result = tuple(arcs)
        self._gate_arcs_cache[gate.index] = result
        return result

    # ------------------------------------------------------------------
    def bound_slews(self) -> Tuple[float, ...]:
        """Sample points covering every input slew a traversal can see.

        Starts from the characterization grid's slew range (falling
        back to a span around the primary-input slew when the library
        carries no grid metadata) and raises the ceiling by fixed-point
        iteration over the library's own output-slew models until no
        gate of this circuit can emit a slower edge than the ceiling.
        Propagated slews on degraded chains are then inside the sampled
        domain, which is what makes :meth:`worst_gate_delay` an
        admissible bound.
        """
        if self._bound_slews is not None:
            return self._bound_slews
        grid = (self.charlib.metadata or {}).get("grid", {})
        grid_slews = tuple(float(t) for t in grid.get("t_in", ()))
        ceiling = max((*grid_slews, self.input_slew, 4 * self.input_slew))
        for _ in range(_SLEW_CEILING_ROUNDS):
            samples = self._slew_samples(grid_slews, ceiling)
            if self.vectorize:
                worst = self.tarrays.max_slew(samples)
            else:
                worst = 0.0
                for gate in self.ec.gates:
                    fo = self.fo[gate.index]
                    for arc in self.gate_arcs(gate):
                        peak = _model_max(arc.slew_model, fo, samples,
                                          self.temp, self.vdd)
                        if peak > worst:
                            worst = peak
            if worst <= ceiling:
                break
            # Overshoot so the ceiling brackets the fixed point in a
            # couple of rounds instead of creeping up on it.
            ceiling = 1.05 * worst
        else:
            _log.warning("bound.slew_ceiling_unconverged",
                         circuit=self.ec.circuit.name, ceiling=ceiling)
        self._bound_slews = self._slew_samples(grid_slews, ceiling)
        return self._bound_slews

    @staticmethod
    def _slew_samples(grid_slews: Tuple[float, ...],
                      ceiling: float) -> Tuple[float, ...]:
        points = {0.0, ceiling}
        points.update(t for t in grid_slews if t < ceiling)
        step = ceiling / (BOUND_SLEW_SAMPLES - 1)
        points.update(k * step for k in range(1, BOUND_SLEW_SAMPLES - 1))
        return tuple(sorted(points))

    def worst_arc_delay(self, gate: EngineGate, pin: str) -> float:
        """Upper bound on any traversal delay of one (gate, pin) arc.

        Admissible for the same reason as :meth:`worst_gate_delay` (the
        fitted delay of every arc of the pin is maximized over the
        whole achievable slew domain), but tighter: only delays the
        traversed pin can exhibit contribute, which is what makes the
        timing graph's backward required-time bound dominate the
        context-free per-gate suffix sum.
        """
        key = (gate.index, pin)
        cached = self._worst_arc_cache.get(key)
        if cached is not None:
            return cached
        worst = 0.0
        fo = self.fo[gate.index]
        slews = self.bound_slews()
        for arc in self.pin_arcs(gate, pin):
            peak = _model_max(arc.delay_model, fo, slews, self.temp, self.vdd)
            if peak > worst:
                worst = peak
        self._worst_arc_cache[key] = worst
        return worst

    def worst_gate_delay(self, gate: EngineGate) -> float:
        """Upper bound on any traversal delay of this gate (used for
        the legacy suffix-sum bound and for the baseline's structural
        enumeration ordering metric).

        Admissible: the fitted delay of every resolvable arc is
        maximized over the whole achievable slew domain
        (:meth:`bound_slews`), not at one fixed pessimistic slew --
        propagated slews on long chains exceed any fixed choice, which
        previously let the N-worst pruning discard true top-N paths.
        Equals the maximum of :meth:`worst_arc_delay` over the gate's
        pins (and shares its per-arc sweeps).
        """
        cached = self._worst_delay_cache.get(gate.index)
        if cached is not None:
            return cached
        self.gate_arcs(gate)  # raises MissingArcsError on hopeless gates
        worst = max(
            (self.worst_arc_delay(gate, pin) for pin in gate.options),
            default=0.0,
        )
        self._worst_delay_cache[gate.index] = worst
        return worst

    def remaining_bounds(self) -> List[float]:
        """Per-net upper bound on the worst delay from that net to any
        primary output (reverse-topological longest path with
        worst-case *per-gate* delays) -- the legacy context-free suffix
        sum.  Admissible but looser than :meth:`required_bounds`; kept
        as the baseline enumerator's ordering metric and as the
        dominance reference for ``pathfinder.bound_prunes``.
        """
        if self._remaining_bounds is not None:
            return self._remaining_bounds
        with span("delaycalc.remaining_bounds"):
            bounds = [0.0] * self.ec.num_nets
            for gate in reversed(self.ec.gates):
                worst = self.worst_gate_delay(gate)
                downstream = bounds[gate.output_net] + worst
                for net in gate.input_nets:
                    if downstream > bounds[net]:
                        bounds[net] = downstream
            self._remaining_bounds = bounds
            return bounds

    def required_bounds(self) -> List[float]:
        """Per-net backward required-time bound from the timing graph
        (:meth:`TimingGraph.backward_required_bounds
        <repro.core.tgraph.TimingGraph.backward_required_bounds>`):
        admissible, and dominated by :meth:`remaining_bounds` per net.
        Memoized, since the circuit and corner are fixed per instance.
        """
        if self._required_bounds is None:
            self._required_bounds = self.ec.tgraph.backward_required_bounds(self)
        return self._required_bounds

    def prune_bounds(self) -> PruneBounds:
        """Both pruning bounds (tight backward required-time + legacy
        suffix sum) as one shippable object -- what the pathfinder
        prunes with and what the parallel driver computes once in the
        parent and sends to worker shards."""
        if self._prune_bounds is None:
            self._prune_bounds = PruneBounds(
                required=tuple(self.required_bounds()),
                suffix=tuple(self.remaining_bounds()),
            )
        return self._prune_bounds

    # ------------------------------------------------------------------
    @property
    def tarrays(self) -> "TimingArrays":
        """Lazy structure-of-arrays compilation of this calculator's
        timing graph (:class:`~repro.core.tarrays.TimingArrays`)."""
        if self._tarrays is None:
            from repro.core.tarrays import TimingArrays

            self._tarrays = TimingArrays(self)
        return self._tarrays

    def ensure_worst_arc_table(self) -> None:
        """Batch-fill the whole (gate, pin) worst-arc-delay cache now.

        The pathfinder calls this when it receives shipped pruning
        bounds but no worst-arc table: its hot loop reads
        :meth:`worst_arc_delay` per traversal, and without the prefill
        each first read would fall back to a scalar model sweep.  A
        no-op in scalar mode (``--no-vectorize`` keeps the lazy
        per-arc sweeps) and after :meth:`seed_tables`.
        """
        if self.vectorize and not self._worst_table_complete:
            self.tarrays.prefill_worst_arcs()
            self._worst_table_complete = True

    def export_tables(self) -> "CompiledTables":
        """Corner-pure derived tables for worker shards
        (:class:`~repro.core.tarrays.CompiledTables`): the slew fixed
        point, the complete worst-arc-delay table and both pruning
        bounds.  Forces the backward pass, so the worst-arc table is
        complete."""
        from repro.core.tarrays import CompiledTables

        bounds = self.prune_bounds()
        return CompiledTables(
            bound_slews=tuple(self.bound_slews()),
            worst_arc=dict(self._worst_arc_cache),
            required=bounds.required,
            suffix=bounds.suffix,
        )

    def seed_tables(self, tables: "CompiledTables") -> None:
        """Adopt a parent calculator's :meth:`export_tables` output.

        Worker shards seed these instead of re-deriving them: the
        values are byte-identical to what this calculator would have
        computed (the sweeps are deterministic per circuit + corner),
        so seeded and self-computed runs are indistinguishable apart
        from the skipped work.
        """
        self._bound_slews = tuple(tables.bound_slews)
        self._worst_arc_cache.update(tables.worst_arc)
        self._required_bounds = list(tables.required)
        self._remaining_bounds = list(tables.suffix)
        self._prune_bounds = PruneBounds(
            required=tuple(tables.required), suffix=tuple(tables.suffix)
        )
        self._worst_table_complete = True

    # ------------------------------------------------------------------
    # incremental-edit plumbing (repro.core.incremental)
    # ------------------------------------------------------------------
    def invalidate_gates(
        self, gate_indices: Sequence[int], keep_bounds: bool = False
    ) -> None:
        """Drop every per-gate memo keyed off the named gates' arcs.

        Called after an in-place cell swap: the gates' resolved-arc
        tuples, worst-arc and worst-gate delays all read the old cell's
        models.  The cell-name-keyed ``_arc_cache`` survives (its
        entries stay correct for every cell, including the new one).
        With ``keep_bounds`` the per-net backward bounds are left for
        the caller to repair incrementally; otherwise they are dropped
        and recomputed from scratch on next access.
        """
        for index in gate_indices:
            self._gate_arcs_cache.pop(index, None)
            self._worst_delay_cache.pop(index, None)
            gate = self.ec.gates[index]
            for pin in gate.options:
                self._pin_arcs_cache.pop((index, pin), None)
                self._worst_arc_cache.pop((index, pin), None)
        self._worst_table_complete = False
        if not keep_bounds:
            self._remaining_bounds = None
            self._required_bounds = None
            self._prune_bounds = None

    def refresh_fanout(self, gate_indices: Sequence[int]) -> None:
        """Re-derive the pre-resolved equivalent fanout of the named
        gates from the circuit's current cells (a swap moves ``fo`` two
        ways: the sink pin caps of the edited gate's *drivers* change,
        and the edited gate's own ``mean_cap`` denominator changes).
        Mirrors the patched values into the compiled SoA tables when
        they exist."""
        circuit = self.ec.circuit
        for index in gate_indices:
            gate = self.ec.gates[index]
            load = output_load(circuit, gate.inst, self.charlib, wire=self.wire)
            self.fo[index] = load / self.charlib.mean_cap(gate.cell.name)
        if self._tarrays is not None:
            self._tarrays.patch_fo(gate_indices)
