"""Two-pattern delay-test export.

The path finder descends from RESIST, a *test generation* algorithm for
path delay faults -- every sensitized path it reports comes with a
primary-input vector, which is exactly a two-pattern delay test: apply
``V1`` (transition input at its initial value), then ``V2`` (transition
input flipped), and the transition races down the path to the output.

This module turns :class:`~repro.core.path.TimedPath` results into an
explicit test set: pattern pairs with expected output values and the
tested path's identity, plus a coverage summary in the path-delay-fault
sense (which multi-vector paths have a test for their *worst* vector --
the coverage a vector-blind tool cannot claim).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.path import TimedPath
from repro.netlist.circuit import Circuit


@dataclass
class DelayTest:
    """One two-pattern test for one sensitized path."""

    path_nets: Tuple[str, ...]
    vector_signature: Tuple[str, ...]
    input_rising: bool
    #: First and second pattern: PI name -> 0/1 (don't-cares filled 0).
    v1: Dict[str, int]
    v2: Dict[str, int]
    #: Expected endpoint values under V1 and V2.
    expected: Tuple[int, int]
    #: Arrival the test exercises (the measured delay bound).
    arrival: float

    @property
    def endpoint(self) -> str:
        return self.path_nets[-1]

    @property
    def origin(self) -> str:
        return self.path_nets[0]


def _concretize(vector: Dict[str, Optional[object]], origin: str,
                rising: bool) -> Tuple[Dict[str, int], Dict[str, int]]:
    v1: Dict[str, int] = {}
    for name, value in vector.items():
        v1[name] = value if value in (0, 1) else 0
    v1[origin] = 0 if rising else 1
    v2 = dict(v1)
    v2[origin] = 1 - v1[origin]
    return v1, v2


def generate_tests(
    circuit: Circuit,
    paths: Sequence[TimedPath],
    validate: bool = True,
) -> List[DelayTest]:
    """One delay test per (path, polarity).

    With ``validate=True`` each pattern pair is checked in two-valued
    simulation (the endpoint must toggle); a non-toggling pair would be
    a tool bug and raises.
    """
    tests: List[DelayTest] = []
    for path in paths:
        for polarity in path.polarities():
            v1, v2 = _concretize(
                polarity.input_vector, path.nets[0], polarity.input_rising
            )
            out1 = circuit.simulate(v1)[path.nets[-1]]
            out2 = circuit.simulate(v2)[path.nets[-1]]
            if validate and out1 == out2:
                raise ValueError(
                    f"non-toggling pattern pair for {path.describe()}"
                )
            tests.append(
                DelayTest(
                    path_nets=path.nets,
                    vector_signature=path.vector_signature,
                    input_rising=polarity.input_rising,
                    v1=v1,
                    v2=v2,
                    expected=(out1, out2),
                    arrival=polarity.arrival,
                )
            )
    return tests


def write_pattern_file(tests: Sequence[DelayTest],
                       inputs: Sequence[str]) -> str:
    """Simple text exchange format: one test per block.

    Patterns are bit strings in the declared input order; comments carry
    the tested path and the timing bound.
    """
    lines = [f"# delay tests ({len(tests)} pairs)"]
    lines.append(f"# inputs: {' '.join(inputs)}")
    for k, test in enumerate(tests):
        lines.append(f"test {k}")
        lines.append(f"  # path: {' -> '.join(test.path_nets)}")
        lines.append(f"  # vectors: {','.join(test.vector_signature)}")
        lines.append(f"  # arrival: {test.arrival * 1e12:.2f} ps")
        v1 = "".join(str(test.v1[i]) for i in inputs)
        v2 = "".join(str(test.v2[i]) for i in inputs)
        lines.append(f"  v1 {v1}")
        lines.append(f"  v2 {v2}")
        lines.append(f"  expect {test.expected[0]}{test.expected[1]}")
    return "\n".join(lines) + "\n"


@dataclass
class CoverageSummary:
    """Path-delay-fault flavoured coverage of a test set."""

    courses_total: int
    courses_tested: int
    multi_vector_courses: int
    multi_vector_worst_covered: int

    @property
    def course_coverage(self) -> float:
        return self.courses_tested / self.courses_total if self.courses_total else 0.0

    @property
    def worst_vector_coverage(self) -> float:
        if not self.multi_vector_courses:
            return 1.0
        return self.multi_vector_worst_covered / self.multi_vector_courses


def coverage(paths: Sequence[TimedPath],
             tests: Sequence[DelayTest]) -> CoverageSummary:
    """How much of the (known-true) path population the tests cover.

    ``multi_vector_worst_covered`` counts multi-vector courses whose
    *worst* vector combination has a test -- the quantity a vector-blind
    flow systematically undercovers.
    """
    by_course: Dict[Tuple[str, ...], List[TimedPath]] = {}
    for p in paths:
        by_course.setdefault(p.course, []).append(p)
    tested_keys = {(t.path_nets, t.vector_signature) for t in tests}
    tested_courses = {t.path_nets for t in tests}

    multi = 0
    worst_covered = 0
    for course, variants in by_course.items():
        if not any(v.multi_vector for v in variants):
            continue
        multi += 1
        worst = max(variants, key=lambda v: v.worst_arrival)
        if (worst.course, worst.vector_signature) in tested_keys:
            worst_covered += 1
    return CoverageSummary(
        courses_total=len(by_course),
        courses_tested=len(tested_courses & set(by_course)),
        multi_vector_courses=multi,
        multi_vector_worst_covered=worst_covered,
    )
