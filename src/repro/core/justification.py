"""Backward justification with decision backtracking.

Whenever the path search requires a steady side value on a gate-driven
net, that requirement must be *justified*: some assignment of circuit
inputs has to force it.  :class:`Justifier` resolves all pending
obligations of an :class:`~repro.core.engine.EngineState` by picking,
for each unjustified net, one of the driver cell's justification cubes
(minimal input assignments forcing the required value), assigning it
(which forward-propagates and may spawn new obligations), and
backtracking chronologically through cube choices on conflict.

The search is complete within one call: if no combination of cubes
works, the requirement set is unsatisfiable and ``UNSAT`` is returned.
An optional backtrack limit makes it abort with ``ABORTED`` instead --
that is how the commercial baseline's backtrack-limited behaviour
(Table 6, "Backtrack limited" column) is modeled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.core.engine import EngineState
from repro.obs.tracing import span


class JustifyResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    ABORTED = "aborted"


@dataclass
class _Frame:
    net: int
    required: int  # packed 9-value
    cubes: Iterator
    mark: int
    #: Obligation index this frame targets; scans resume here (every
    #: earlier obligation was verified justified when the frame opened,
    #: which rollback preserves).
    scan_from: int


class Justifier:
    """Resolves pending obligations of one engine state.

    Parameters
    ----------
    state:
        The engine state to operate on (mutated in place; on UNSAT or
        ABORT it is rolled back to its entry state).
    backtrack_limit:
        Abort after this many chronological backtracks (None = complete
        search).
    easiest_first:
        Try small cubes first.  This matches both the commercial
        baseline's behaviour and the natural smallest-first order; the
        developed tool's correctness does not depend on the order (it
        only needs *one* witness per sensitization-vector combination).
    dynamic:
        Use nine-valued justification cubes, whose literals may be
        transitions -- required to justify steady values *inside* the
        transition cone (e.g. XNOR of opposite transitions is steady).
        Only meaningful in a single-polarity state; ``origin`` names the
        one primary input allowed to carry a transition (the paper's
        single-input-transition model).
    scan_from:
        Obligation index the initial scan starts at.  Justification is
        monotone along a trail extension (implied values only gain
        information), so a caller that has already verified a prefix of
        the obligation list -- the path search verifies everything up
        to the last saved state -- may resume the scan there instead of
        rescanning from 0 on every step.
    """

    def __init__(self, state: EngineState, backtrack_limit: Optional[int] = None,
                 easiest_first: bool = True, dynamic: bool = False,
                 origin: Optional[int] = None, scan_from: int = 0):
        self.state = state
        self.backtrack_limit = backtrack_limit
        self.easiest_first = easiest_first
        self.dynamic = dynamic
        self.origin = origin
        self.scan_from = scan_from
        #: Backtracks consumed across the Justifier's lifetime (the
        #: baseline shares one budget across a whole path check).
        self.backtracks = 0
        #: Cube applications attempted (plain attribute; callers fold
        #: it into their own search-effort metrics).
        self.cubes_tried = 0

    def _cubes(self, net: int, required: int) -> List:
        from repro.core.logic_values import Value9

        gate = self.state.ec.gates[self.state.ec.driver[net]]
        if self.dynamic:
            cubes9 = gate.evaluator.dynamic_cubes(required)
            resolved = []
            for cube in cubes9:
                literals = []
                valid = True
                for pin, value in cube.items():
                    literal_net = gate.input_nets[gate.cell.pin_index(pin)]
                    if (
                        Value9.is_transition(value)
                        and self.state.ec.driver[literal_net] < 0
                        and literal_net != self.origin
                    ):
                        # Only the origin PI may carry a transition.
                        valid = False
                        break
                    literals.append((literal_net, value))
                if valid:
                    resolved.append(literals)
            return resolved
        if not Value9.is_steady(required):
            return []  # static justification cannot produce transitions
        bit = Value9.final_of(required)
        cubes = gate.cell.justification_cubes(bit)
        if not self.easiest_first:
            cubes = list(reversed(cubes))
        return [
            [(gate.input_nets[gate.cell.pin_index(pin)], Value9.steady(value))
             for pin, value in cube.items()]
            for cube in cubes
        ]

    def _cube_compatible(self, cube) -> bool:
        """Cheap pre-filter: reject cubes whose literals clash with the
        current values outright (saves a checkpoint/rollback cycle; the
        real test with propagation still happens in ``_apply_cube``)."""
        state = self.state
        from repro.core.logic_values import MERGE_TABLE

        values = state.values
        alive = state.alive
        for net, value in cube:
            dead_everywhere = True
            for comp in (0, 1):
                if not alive[comp]:
                    continue
                if MERGE_TABLE[values[comp][net] * 9 + value] >= 0:
                    dead_everywhere = False
                    break
            if dead_everywhere:
                return False
        return True

    def _apply_cube(self, cube) -> bool:
        state = self.state
        for net, value in cube:
            if not state.require_value(net, value):
                return False
        return state.propagate()

    def justify(self) -> JustifyResult:
        """Resolve every pending obligation; see class docstring."""
        with span("justify.solve"):
            return self._justify()

    def _justify(self) -> JustifyResult:
        state = self.state
        entry_mark = state.checkpoint()
        stack: List[_Frame] = []

        def open_frame(scan_from: int) -> Optional[_Frame]:
            pending = state.first_unjustified(scan_from)
            if pending is None:
                return None
            index, net, required = pending
            return _Frame(net, required, iter(self._cubes(net, required)),
                          state.checkpoint(), index)

        frame = open_frame(self.scan_from)
        if frame is None:
            return JustifyResult.SAT
        stack.append(frame)

        while stack:
            frame = stack[-1]
            advanced = False
            for cube in frame.cubes:
                state.rollback(frame.mark)
                self.cubes_tried += 1
                if not self._cube_compatible(cube):
                    continue
                if self._apply_cube(cube):
                    advanced = True
                    break
                self.backtracks += 1
                if self._over_limit():
                    state.rollback(entry_mark)
                    return JustifyResult.ABORTED
            if not advanced:
                state.rollback(frame.mark)
                stack.pop()
                self.backtracks += 1
                if self._over_limit():
                    state.rollback(entry_mark)
                    return JustifyResult.ABORTED
                # The parent frame must move to its next cube; that
                # happens naturally on the next loop iteration because
                # its iterator position is preserved.
                continue
            child = open_frame(frame.scan_from)
            if child is None:
                return JustifyResult.SAT
            stack.append(child)

        state.rollback(entry_mark)
        return JustifyResult.UNSAT

    def _over_limit(self) -> bool:
        return (
            self.backtrack_limit is not None
            and self.backtracks > self.backtrack_limit
        )
