"""The paper's primary contribution: single-pass true-path STA.

* :mod:`repro.core.logic_values` -- the dual-value logic system with
  semi-undetermined values (Section IV.B of the paper);
* :mod:`repro.core.engine` -- indexed circuit state with an assignment
  trail, forward implication and component-kill bookkeeping;
* :mod:`repro.core.justification` -- exhaustive backward justification
  with decision backtracking;
* :mod:`repro.core.path` -- path records with per-polarity timing;
* :mod:`repro.core.delaycalc` -- vector-resolved delay accumulation;
* :mod:`repro.core.pathfinder` -- the single-pass sensitize-while-
  traversing true-path enumeration;
* :mod:`repro.core.sta` -- the user-facing :class:`TruePathSTA` tool;
* :mod:`repro.core.graphsta` -- block-based (GBA) analysis for
  pessimism comparisons;
* :mod:`repro.core.report` -- slack/hold reports and JSON export;
* :mod:`repro.core.variation` -- Monte-Carlo statistical timing;
* :mod:`repro.core.sizing` -- the gate-sizing ECO loop.
"""

from repro.core.graphsta import GraphSTA
from repro.core.logic_values import Value9
from repro.core.path import PathStep, TimedPath
from repro.core.report import hold_report, paths_to_json, slack_report
from repro.core.sta import TruePathSTA

__all__ = [
    "GraphSTA",
    "PathStep",
    "TimedPath",
    "TruePathSTA",
    "Value9",
    "hold_report",
    "paths_to_json",
    "slack_report",
]
