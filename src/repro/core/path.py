"""Path records produced by the true-path search."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class PathStep:
    """One gate traversal of a path."""

    gate_name: str
    cell_name: str
    pin: str
    vector_id: str
    case: int
    fo: float


@dataclass
class PolarityTiming:
    """Timing of one transition polarity at the path origin.

    The dual-value engine traces both polarities in one pass; each
    surviving polarity yields one of these.
    """

    input_rising: bool
    output_rising: bool
    arrival: float
    slew: float
    gate_delays: List[float]
    gate_slews: List[float]
    #: Primary-input assignment justifying the sensitization (values
    #: 0/1, "T" for the transition source, None for don't-care).
    input_vector: Dict[str, Optional[object]]


@dataclass
class TimedPath:
    """A sensitized (true) path under one sensitization-vector combo."""

    circuit_name: str
    #: Net names from the origin primary input through each gate output.
    nets: Tuple[str, ...]
    steps: Tuple[PathStep, ...]
    rise: Optional[PolarityTiming] = None
    fall: Optional[PolarityTiming] = None
    #: Whether any traversed pin offers more than one sensitization
    #: vector (set by the pathfinder; these are the paths of interest
    #: in the paper's evaluation).
    multi_vector: bool = False

    # ------------------------------------------------------------------
    @property
    def course(self) -> Tuple[str, ...]:
        """The structural course (gate output sequence), vector-blind.

        The paper "preserves as different paths those having the same
        course ... but using different sensitization vectors"; this key
        identifies the shared course.
        """
        return self.nets

    @property
    def vector_signature(self) -> Tuple[str, ...]:
        return tuple(step.vector_id for step in self.steps)

    @property
    def key(self) -> Tuple:
        return (self.nets, self.vector_signature)

    @property
    def length(self) -> int:
        return len(self.steps)

    def polarities(self) -> List[PolarityTiming]:
        return [p for p in (self.rise, self.fall) if p is not None]

    @property
    def worst_arrival(self) -> float:
        arrivals = [p.arrival for p in self.polarities()]
        if not arrivals:
            raise ValueError("path has no surviving polarity")
        return max(arrivals)

    def describe(self) -> str:
        stages = " -> ".join(
            f"{s.gate_name}[{s.cell_name}.{s.pin} {s.vector_id}]" for s in self.steps
        )
        pol = []
        if self.rise:
            pol.append(f"rise={self.rise.arrival * 1e12:.1f}ps")
        if self.fall:
            pol.append(f"fall={self.fall.arrival * 1e12:.1f}ps")
        return f"{self.nets[0]} -> {self.nets[-1]} ({', '.join(pol)}): {stages}"
