"""Greedy gate sizing on the true critical path (ECO flow).

A small engineering-change-order loop built on the single-pass STA:
while the worst true path misses the required time, upsize the gate on
it with the largest delay contribution (swapping in its X2 drive
variant), then re-analyze.  Because the analysis is vector-resolved,
the loop optimizes against the *functional* worst case rather than an
easy-vector estimate -- sizing driven by a vector-blind tool can stop
too early (it thinks timing is met while a harder vector still fails).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.charlib.store import CharacterizedLibrary
from repro.core.path import TimedPath
from repro.core.sta import TruePathSTA
from repro.netlist.circuit import Circuit


def replace_cell(circuit: Circuit, inst_name: str, new_cell) -> None:
    """Swap an instance's cell for a pin-compatible variant, in place."""
    inst = circuit.instances[inst_name]
    if isinstance(new_cell, str):
        new_cell = circuit.library[new_cell]
    if new_cell.inputs != inst.cell.inputs:
        raise ValueError(
            f"{new_cell.name} is not pin-compatible with {inst.cell.name}"
        )
    inst.cell = new_cell
    circuit._topo_cache = None  # timing caches key off instance cells


@dataclass
class SizingChange:
    gate_name: str
    from_cell: str
    to_cell: str
    arrival_before: float
    arrival_after: float


@dataclass
class SizingResult:
    met: bool
    required_time: float
    initial_arrival: float
    final_arrival: float
    changes: List[SizingChange] = field(default_factory=list)

    def describe(self) -> str:
        lines = [
            f"sizing: {self.initial_arrival * 1e12:.1f} ps -> "
            f"{self.final_arrival * 1e12:.1f} ps "
            f"(required {self.required_time * 1e12:.1f} ps, "
            f"{'MET' if self.met else 'NOT MET'})"
        ]
        for c in self.changes:
            lines.append(
                f"  {c.gate_name}: {c.from_cell} -> {c.to_cell} "
                f"({c.arrival_before * 1e12:.1f} -> "
                f"{c.arrival_after * 1e12:.1f} ps)"
            )
        return "\n".join(lines)


def _worst_path(sta: TruePathSTA, max_paths: Optional[int]) -> TimedPath:
    paths = sta.enumerate_paths(max_paths=max_paths)
    if not paths:
        raise ValueError("circuit has no true paths")
    return max(paths, key=lambda p: p.worst_arrival)


def upsize_critical_path(
    circuit: Circuit,
    charlib: CharacterizedLibrary,
    required_time: float,
    variant_suffix: str = "_X2",
    max_iterations: int = 20,
    max_paths: Optional[int] = 5000,
    temp: float = 25.0,
    vdd: Optional[float] = None,
) -> SizingResult:
    """Greedy upsizing until the worst true path meets ``required_time``.

    The circuit's library must contain the drive variants and the
    characterized library must cover them (use
    :func:`repro.gates.library.sized_library`).  The circuit is
    modified in place.
    """
    sta = TruePathSTA(circuit, charlib, temp=temp, vdd=vdd)
    worst = _worst_path(sta, max_paths)
    initial = worst.worst_arrival
    result = SizingResult(
        met=initial <= required_time,
        required_time=required_time,
        initial_arrival=initial,
        final_arrival=initial,
    )
    for _ in range(max_iterations):
        if result.final_arrival <= required_time:
            result.met = True
            return result
        polarity = max(worst.polarities(), key=lambda p: p.arrival)
        # Candidate: the largest-delay gate on the path that still has
        # an unapplied variant.
        candidates = sorted(
            zip(worst.steps, polarity.gate_delays),
            key=lambda item: -item[1],
        )
        swapped = False
        for step, _delay in candidates:
            variant_name = f"{step.cell_name}{variant_suffix}"
            if variant_name not in circuit.library:
                continue
            before = result.final_arrival
            replace_cell(circuit, step.gate_name, variant_name)
            sta = TruePathSTA(circuit, charlib, temp=temp, vdd=vdd)
            worst = _worst_path(sta, max_paths)
            after = worst.worst_arrival
            if after >= before:  # upsizing hurt (self-loading); revert
                replace_cell(circuit, step.gate_name, step.cell_name)
                sta = TruePathSTA(circuit, charlib, temp=temp, vdd=vdd)
                worst = _worst_path(sta, max_paths)
                continue
            result.changes.append(
                SizingChange(
                    gate_name=step.gate_name,
                    from_cell=step.cell_name,
                    to_cell=variant_name,
                    arrival_before=before,
                    arrival_after=after,
                )
            )
            result.final_arrival = after
            swapped = True
            break
        if not swapped:
            break  # nothing left to upsize
    result.met = result.final_arrival <= required_time
    return result
