"""Greedy gate sizing on the true critical path (ECO flow).

A small engineering-change-order loop built on the single-pass STA:
while the worst true path misses the required time, upsize the gate on
it with the largest delay contribution (swapping in its X2 drive
variant), then re-analyze.  Because the analysis is vector-resolved,
the loop optimizes against the *functional* worst case rather than an
easy-vector estimate -- sizing driven by a vector-blind tool can stop
too early (it thinks timing is met while a harder vector still fails).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.charlib.store import CharacterizedLibrary
from repro.netlist.circuit import Circuit


def replace_cell(circuit: Circuit, inst_name: str, new_cell) -> None:
    """Swap an instance's cell for a pin-compatible variant, in place."""
    inst = circuit.instances[inst_name]
    if isinstance(new_cell, str):
        new_cell = circuit.library[new_cell]
    if new_cell.inputs != inst.cell.inputs:
        raise ValueError(
            f"{new_cell.name} is not pin-compatible with {inst.cell.name}"
        )
    inst.cell = new_cell
    circuit._topo_cache = None  # timing caches key off instance cells


@dataclass
class SizingChange:
    gate_name: str
    from_cell: str
    to_cell: str
    arrival_before: float
    arrival_after: float


@dataclass
class SizingResult:
    met: bool
    required_time: float
    initial_arrival: float
    final_arrival: float
    changes: List[SizingChange] = field(default_factory=list)

    def describe(self) -> str:
        lines = [
            f"sizing: {self.initial_arrival * 1e12:.1f} ps -> "
            f"{self.final_arrival * 1e12:.1f} ps "
            f"(required {self.required_time * 1e12:.1f} ps, "
            f"{'MET' if self.met else 'NOT MET'})"
        ]
        for c in self.changes:
            lines.append(
                f"  {c.gate_name}: {c.from_cell} -> {c.to_cell} "
                f"({c.arrival_before * 1e12:.1f} -> "
                f"{c.arrival_after * 1e12:.1f} ps)"
            )
        return "\n".join(lines)


def upsize_critical_path(
    circuit: Circuit,
    charlib: CharacterizedLibrary,
    required_time: float,
    variant_suffix: str = "_X2",
    max_iterations: int = 20,
    max_paths: Optional[int] = 5000,
    temp: float = 25.0,
    vdd: Optional[float] = None,
) -> SizingResult:
    """Greedy upsizing until the worst true path meets ``required_time``.

    The circuit's library must contain the drive variants and the
    characterized library must cover them (use
    :func:`repro.gates.library.sized_library`).  The circuit is
    modified in place.

    Thin compatibility wrapper: the loop itself now lives in
    :class:`repro.opt.sizer.TimingDrivenSizer` (strategy ``greedy``,
    identical round semantics -- ``max_iterations`` rounds, first
    strictly-improving swap per round, reverts otherwise), driven by
    the incremental STA session instead of a from-scratch rebuild per
    candidate.  When no gate on the critical path has a drive variant
    the sizer emits a structured ``sizer.no_candidate`` warning and
    counter instead of silently returning an empty result.
    """
    from repro.opt.sizer import TimingDrivenSizer  # late: avoids cycle

    sizer = TimingDrivenSizer(
        circuit, charlib, required_time,
        strategy="greedy",
        max_moves=max_iterations,
        variant_suffix=variant_suffix,
        max_paths=max_paths,
        temp=temp,
        vdd=vdd,
    )
    return sizer.run().to_sizing_result()
