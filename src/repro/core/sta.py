"""User-facing true-path STA tool.

:class:`TruePathSTA` wires the indexed circuit, the vector-resolved
delay calculator and the single-pass path finder into the interface the
examples and benchmarks use::

    sta = TruePathSTA(circuit, charlib)
    paths = sta.enumerate_paths()
    critical = sta.n_worst_paths(10)
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.charlib.store import CharacterizedLibrary
from repro.core.delaycalc import DEFAULT_INPUT_SLEW, DelayCalculator
from repro.core.engine import EngineCircuit
from repro.core.path import TimedPath
from repro.core.pathfinder import PathFinder, PathStream, SearchStats
from repro.netlist.circuit import Circuit
from repro.obs.tracing import span


class TruePathSTA:
    """Single-pass sensitization-vector-aware static timing analysis.

    Parameters
    ----------
    circuit:
        Combinational circuit to analyze.
    charlib:
        Vector-resolved characterized library (``model="polynomial"``,
        ``vector_mode="all"``).
    temp / vdd:
        Analysis corner; VDD defaults to the technology nominal.
    input_slew:
        Transition time assumed at primary inputs.
    """

    def __init__(
        self,
        circuit: Circuit,
        charlib: CharacterizedLibrary,
        temp: float = 25.0,
        vdd: Optional[float] = None,
        input_slew: float = DEFAULT_INPUT_SLEW,
    ):
        circuit.check()
        self.circuit = circuit
        self.charlib = charlib
        self.ec = EngineCircuit(circuit)
        self.calc = DelayCalculator(
            self.ec, charlib, temp=temp, vdd=vdd, input_slew=input_slew
        )
        self.last_stats: Optional[SearchStats] = None

    # ------------------------------------------------------------------
    def iter_paths(
        self,
        max_paths: Optional[int] = None,
        inputs: Optional[Sequence[str]] = None,
        n_worst: Optional[int] = None,
        justify_backtrack_limit: Optional[int] = None,
        single_polarity: Optional[int] = None,
        complete: bool = False,
    ) -> PathStream:
        """Stream true paths as the single-pass search finds them.

        The returned :class:`PathStream` is a plain iterator that also
        supports ``close()`` and the context-manager protocol: closing
        it (or exhausting it) publishes the run's :class:`SearchStats`
        and ``delaycalc.*`` counters immediately, so metric snapshots
        taken after an early stop are complete.
        """
        finder = PathFinder(
            self.ec,
            self.calc,
            justify_backtrack_limit=justify_backtrack_limit,
            max_paths=max_paths,
            n_worst=n_worst,
            single_polarity=single_polarity,
            complete=complete,
        )
        self.last_stats = finder.stats
        return finder.find_paths(inputs=inputs)

    def enumerate_paths(self, jobs: Optional[int] = None, **kwargs) -> List[TimedPath]:
        """All true paths x sensitization-vector combinations.

        ``jobs`` > 1 shards the search across primary inputs in a
        process pool (:func:`repro.perf.parallel_find_paths`) and
        merges the per-origin streams in declaration order.
        """
        if jobs is not None and jobs > 1:
            from repro.perf import parallel_find_paths

            paths, stats = parallel_find_paths(
                self.circuit,
                self.charlib,
                jobs=jobs,
                temp=self.calc.temp,
                vdd=self.calc.vdd,
                input_slew=self.calc.input_slew,
                **kwargs,
            )
            self.last_stats = stats
            return paths
        with span("pathfinder.search"):
            with self.iter_paths(**kwargs) as stream:
                return list(stream)

    def n_worst_paths(self, n: int, prune: bool = True, **kwargs) -> List[TimedPath]:
        """The N slowest true paths, worst first.

        Because sensitization happens *during* traversal, no initial
        structural path count has to be guessed -- the single-pass
        search with bound pruning directly yields the N true paths.
        """
        kwargs.setdefault("n_worst", n if prune else None)
        paths = self.enumerate_paths(**kwargs)
        paths.sort(key=lambda p: p.worst_arrival, reverse=True)
        return paths[:n]

    # ------------------------------------------------------------------
    @staticmethod
    def group_by_course(paths: Iterable[TimedPath]) -> Dict[Tuple[str, ...], List[TimedPath]]:
        """Group vector variants of the same gate sequence."""
        groups: Dict[Tuple[str, ...], List[TimedPath]] = defaultdict(list)
        for path in paths:
            groups[path.course].append(path)
        return dict(groups)

    @staticmethod
    def worst_vector_per_course(
        paths: Iterable[TimedPath],
    ) -> Dict[Tuple[str, ...], TimedPath]:
        """For each course, the vector combination with the largest
        arrival -- the delay a correct tool must report."""
        best: Dict[Tuple[str, ...], TimedPath] = {}
        for path in paths:
            current = best.get(path.course)
            if current is None or path.worst_arrival > current.worst_arrival:
                best[path.course] = path
        return best

    def multi_vector_paths(self, paths: Iterable[TimedPath]) -> List[TimedPath]:
        """The paths the paper's evaluation focuses on: those traversing
        at least one pin with multiple sensitization vectors."""
        return [p for p in paths if p.multi_vector]

    # ------------------------------------------------------------------
    def report(self, paths: Sequence[TimedPath], limit: int = 20) -> str:
        """Human-readable critical-path report."""
        lines = [
            f"True-path report for {self.circuit.name} "
            f"({self.charlib.tech_name}, {len(paths)} sensitizations)"
        ]
        ordered = sorted(paths, key=lambda p: p.worst_arrival, reverse=True)
        for k, path in enumerate(ordered[:limit], start=1):
            lines.append(f"{k:3d}. {path.worst_arrival * 1e12:8.1f} ps  {path.describe()}")
        if len(ordered) > limit:
            lines.append(f"... {len(ordered) - limit} more")
        return "\n".join(lines)
