"""User-facing true-path STA tool.

:class:`TruePathSTA` wires the indexed circuit, the vector-resolved
delay calculator and the single-pass path finder into the interface the
examples and benchmarks use::

    sta = TruePathSTA(circuit, charlib)
    paths = sta.enumerate_paths()
    critical = sta.n_worst_paths(10)
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.charlib.store import CharacterizedLibrary
from repro.core.delaycalc import DEFAULT_INPUT_SLEW, DelayCalculator
from repro.core.engine import EngineCircuit
from repro.core.path import TimedPath
from repro.core.pathfinder import PathFinder, PathStream, SearchStats
from repro.netlist.circuit import Circuit
from repro.obs.tracing import span
from repro.resilience.budgets import CompletenessReport, SearchBudgets


@dataclass
class AnalysisResult:
    """Anytime analysis product: always a report, always bounded.

    ``paths`` is exact for every ``complete`` origin in
    ``completeness``; each non-complete origin carries
    ``gba_bound`` -- the GBA forward-pass worst endpoint arrival, a
    sound upper bound on any path the budgeted search did not reach.
    """

    paths: List[TimedPath]
    stats: SearchStats
    completeness: CompletenessReport
    resumed_shards: int = 0

    @property
    def degraded(self) -> bool:
        return not self.completeness.complete

    def describe_completeness(self) -> str:
        lines = [f"origin completeness: {self.completeness.summary()}"]
        for name, outcome in self.completeness.degraded_origins().items():
            bound = (
                f"GBA bound {outcome.gba_bound * 1e12:.1f} ps"
                if outcome.gba_bound is not None else "no bound"
            )
            lines.append(
                f"  {name}: {outcome.status} "
                f"({outcome.paths_found} paths found, {bound})"
            )
        return "\n".join(lines)


class TruePathSTA:
    """Single-pass sensitization-vector-aware static timing analysis.

    Parameters
    ----------
    circuit:
        Combinational circuit to analyze.
    charlib:
        Vector-resolved characterized library (``model="polynomial"``,
        ``vector_mode="all"``).
    temp / vdd:
        Analysis corner; VDD defaults to the technology nominal.
    input_slew:
        Transition time assumed at primary inputs.
    missing_arc_policy:
        ``error`` (default) raises on any unresolvable timing arc;
        ``warn-substitute`` falls back to the nearest characterized arc
        of the same cell, counting ``delaycalc.arc_substitutions``.
    vectorize:
        Route the sweep passes (pruning bounds, slew fixed point, GBA
        forward) through the structure-of-arrays batched kernels
        (:mod:`repro.core.tarrays`).  Results are byte-identical either
        way; ``--no-vectorize`` exposes the scalar reference path.
    """

    def __init__(
        self,
        circuit: Circuit,
        charlib: CharacterizedLibrary,
        temp: float = 25.0,
        vdd: Optional[float] = None,
        input_slew: float = DEFAULT_INPUT_SLEW,
        missing_arc_policy: str = "error",
        vectorize: bool = True,
    ):
        circuit.check()
        self.circuit = circuit
        self.charlib = charlib
        self.missing_arc_policy = missing_arc_policy
        self.ec = EngineCircuit(circuit)
        self.calc = DelayCalculator(
            self.ec, charlib, temp=temp, vdd=vdd, input_slew=input_slew,
            missing_arc_policy=missing_arc_policy, vectorize=vectorize,
        )
        self.last_stats: Optional[SearchStats] = None
        #: Per-origin completeness of the most recent search (None
        #: until a search ran).
        self.last_completeness: Optional[CompletenessReport] = None

    # ------------------------------------------------------------------
    def iter_paths(
        self,
        max_paths: Optional[int] = None,
        inputs: Optional[Sequence[str]] = None,
        n_worst: Optional[int] = None,
        justify_backtrack_limit: Optional[int] = None,
        single_polarity: Optional[int] = None,
        complete: bool = False,
        budgets: Optional[SearchBudgets] = None,
    ) -> PathStream:
        """Stream true paths as the single-pass search finds them.

        The returned :class:`PathStream` is a plain iterator that also
        supports ``close()`` and the context-manager protocol: closing
        it (or exhausting it) publishes the run's :class:`SearchStats`
        and ``delaycalc.*`` counters immediately, so metric snapshots
        taken after an early stop are complete.
        """
        finder = PathFinder(
            self.ec,
            self.calc,
            justify_backtrack_limit=justify_backtrack_limit,
            max_paths=max_paths,
            n_worst=n_worst,
            single_polarity=single_polarity,
            complete=complete,
            budgets=budgets,
        )
        self.last_stats = finder.stats
        self.last_completeness = finder.completeness
        return finder.find_paths(inputs=inputs)

    def enumerate_paths(self, jobs: Optional[int] = None, **kwargs) -> List[TimedPath]:
        """All true paths x sensitization-vector combinations.

        ``jobs`` > 1 shards the search across primary inputs in a
        process pool (:func:`repro.perf.parallel_find_paths`) and
        merges the per-origin streams in declaration order.
        """
        if jobs is not None and jobs > 1:
            from repro.perf import supervised_find_paths

            result = supervised_find_paths(
                self.circuit,
                self.charlib,
                jobs=jobs,
                temp=self.calc.temp,
                vdd=self.calc.vdd,
                input_slew=self.calc.input_slew,
                missing_arc_policy=self.missing_arc_policy,
                vectorize=self.calc.vectorize,
                **kwargs,
            )
            self.last_stats = result.stats
            self.last_completeness = result.completeness
            return result.paths
        with span("pathfinder.search"):
            with self.iter_paths(**kwargs) as stream:
                return list(stream)

    def analyze(
        self,
        jobs: int = 1,
        budgets: Optional[SearchBudgets] = None,
        attach_gba_bounds: bool = True,
        **kwargs,
    ) -> AnalysisResult:
        """Supervised anytime analysis: always returns a report.

        Routes the search through
        :func:`repro.perf.supervised_find_paths` regardless of ``jobs``
        (``jobs=1`` runs the same shard/merge pipeline in-process), so
        budgets, checkpoint/resume and the missing-arc policy behave
        identically in serial and parallel runs.  When
        ``attach_gba_bounds`` is set and any origin came back
        non-complete, a one-pass GBA forward analysis supplies a sound
        upper bound on every arrival the budgeted search did not reach;
        the bound lands on each degraded origin's
        :attr:`~repro.resilience.budgets.OriginOutcome.gba_bound`.
        """
        from repro.perf import supervised_find_paths

        result = supervised_find_paths(
            self.circuit,
            self.charlib,
            jobs=jobs,
            temp=self.calc.temp,
            vdd=self.calc.vdd,
            input_slew=self.calc.input_slew,
            missing_arc_policy=self.missing_arc_policy,
            vectorize=self.calc.vectorize,
            budgets=budgets,
            **kwargs,
        )
        self.last_stats = result.stats
        self.last_completeness = result.completeness
        analysis = AnalysisResult(
            paths=result.paths,
            stats=result.stats,
            completeness=result.completeness,
            resumed_shards=result.resumed_shards,
        )
        if attach_gba_bounds and analysis.degraded:
            self._attach_gba_bounds(analysis.completeness)
        return analysis

    def _attach_gba_bounds(self, completeness: CompletenessReport) -> None:
        """Stamp every non-complete origin with the GBA worst endpoint
        arrival -- a sound upper bound on any true path arrival, since
        GBA takes the worst arc at every gate without asking whether the
        required sensitization vectors coexist."""
        from repro.core.graphsta import GraphSTA

        gba = GraphSTA(
            self.circuit,
            self.charlib,
            temp=self.calc.temp,
            vdd=self.calc.vdd,
            input_slew=self.calc.input_slew,
            missing_arc_policy=self.missing_arc_policy,
            vectorize=self.calc.vectorize,
        ).run()
        bound: Optional[float] = None
        for output in self.circuit.outputs:
            try:
                arrival = gba.worst_arrival(output)
            except (KeyError, ValueError):
                continue
            if bound is None or arrival > bound:
                bound = arrival
        for outcome in completeness.degraded_origins().values():
            outcome.gba_bound = bound

    def n_worst_paths(self, n: int, prune: bool = True, **kwargs) -> List[TimedPath]:
        """The N slowest true paths, worst first.

        Because sensitization happens *during* traversal, no initial
        structural path count has to be guessed -- the single-pass
        search with bound pruning directly yields the N true paths.
        """
        kwargs.setdefault("n_worst", n if prune else None)
        paths = self.enumerate_paths(**kwargs)
        paths.sort(key=lambda p: p.worst_arrival, reverse=True)
        return paths[:n]

    # ------------------------------------------------------------------
    @staticmethod
    def group_by_course(paths: Iterable[TimedPath]) -> Dict[Tuple[str, ...], List[TimedPath]]:
        """Group vector variants of the same gate sequence."""
        groups: Dict[Tuple[str, ...], List[TimedPath]] = defaultdict(list)
        for path in paths:
            groups[path.course].append(path)
        return dict(groups)

    @staticmethod
    def worst_vector_per_course(
        paths: Iterable[TimedPath],
    ) -> Dict[Tuple[str, ...], TimedPath]:
        """For each course, the vector combination with the largest
        arrival -- the delay a correct tool must report."""
        best: Dict[Tuple[str, ...], TimedPath] = {}
        for path in paths:
            current = best.get(path.course)
            if current is None or path.worst_arrival > current.worst_arrival:
                best[path.course] = path
        return best

    def multi_vector_paths(self, paths: Iterable[TimedPath]) -> List[TimedPath]:
        """The paths the paper's evaluation focuses on: those traversing
        at least one pin with multiple sensitization vectors."""
        return [p for p in paths if p.multi_vector]

    # ------------------------------------------------------------------
    def report(self, paths: Sequence[TimedPath], limit: int = 20) -> str:
        """Human-readable critical-path report."""
        lines = [
            f"True-path report for {self.circuit.name} "
            f"({self.charlib.tech_name}, {len(paths)} sensitizations)"
        ]
        ordered = sorted(paths, key=lambda p: p.worst_arrival, reverse=True)
        for k, path in enumerate(ordered[:limit], start=1):
            lines.append(f"{k:3d}. {path.worst_arrival * 1e12:8.1f} ps  {path.describe()}")
        if len(ordered) > limit:
            lines.append(f"... {len(ordered) - limit} more")
        return "\n".join(lines)
