"""Incremental STA session: dirty-cone re-analysis across netlist edits.

Every other entry point in the repo is batch: one circuit in, one
analysis out, and an edit (gate resize, cell swap) means rebuilding the
whole pipeline -- engine indexing, arc resolution, slew fixed point,
forward/backward sweeps, SoA compilation.  :class:`IncrementalSTA`
keeps all of that state alive across edits and, after a pin-compatible
:meth:`replace_cell`, repairs only what the edit actually touched:

* **Dirty gates.**  A swap of gate ``g`` changes the timing of ``g``
  itself (new models, new ``mean_cap`` denominator in its equivalent
  fanout) *and* of every gate driving one of ``g``'s input nets (their
  output load includes ``g``'s input-pin caps).  Everything keyed off
  those gates' arcs is invalidated surgically:
  :meth:`DelayCalculator.invalidate_gates` drops the per-gate memos
  while the cell-name-keyed arc cache survives,
  :meth:`DelayCalculator.refresh_fanout` re-derives their equivalent
  fanouts, and :meth:`TimingArrays.patch_gate` rewrites the edited
  gate's SoA records in place instead of recompiling the graph.

* **Forward cone.**  Arrivals/slews are re-propagated from the dirty
  gates' output nets through the transitive fanout, one net at a time
  in level order (:meth:`TimingGraph.forward_update_net`), stopping as
  soon as a net's recomputed slots equal its prior values -- float
  ``max`` over a fixed multiset is order-independent and the per-arc
  arithmetic is the same IEEE doubles the full pass performs, so the
  repaired :class:`ForwardTiming` is *byte-identical* to a from-scratch
  pass (the ``incremental_identical`` metamorphic law pins this).

* **Backward cone.**  The per-net required-time and suffix bounds are
  re-propagated through the transitive fanin in descending level order
  (:meth:`TimingGraph.required_through_net` /
  :meth:`~TimingGraph.suffix_through_net`), again stopping on
  convergence; cached :class:`PruneBounds` are dropped only when a
  bound actually moved.

* **Slew fixed point.**  The achievable-slew ceiling
  (:meth:`DelayCalculator.bound_slews`) is a global fixed point, but
  its rounds only need the *worst* output slew per sample grid -- so
  the session keeps a per-gate peak table per grid and re-evaluates
  only dirty gates per edit.  When the resulting sample tuple differs
  from the active one, every fitted worst-delay value in the circuit is
  stale and the session falls back to a counted full rebuild
  (``incremental.full_rebuilds``).

N-worst path reports are memoized per session version (edits bump the
version); a cached report whose cone was touched is simply dropped --
paths entering or leaving the top-N cannot be patched locally.

``full_rebuild=True`` turns the session into its own A/B reference:
every edit tears down all derived state and re-analyzes from scratch
through the identical code paths, which is what the CI smoke job diffs
against at 0% drift.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.charlib.store import CharacterizedLibrary
from repro.core.delaycalc import (
    DEFAULT_INPUT_SLEW,
    DelayCalculator,
    _SLEW_CEILING_ROUNDS,
    _model_max,
)
from repro.core.engine import CellEvaluator, EngineCircuit, EngineGate, VectorOption
from repro.core.path import TimedPath
from repro.core.pathfinder import PathFinder
from repro.core.tgraph import ForwardTiming
from repro.gates.cell import Cell
from repro.netlist.circuit import Circuit
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger
from repro.obs.tracing import span
from repro.resilience.budgets import SearchBudgets

_log = get_logger("repro.incremental")


@dataclass
class EditReport:
    """What one edit's re-analysis actually touched."""

    gate_name: str
    from_cell: str
    to_cell: str
    #: Nets whose forward slots were recomputed (== gates re-swept).
    cone_gates: int
    #: Nets whose backward bounds were recomputed.
    backward_nets: int
    #: Distinct graph levels visited, forward + backward.
    levels_reswept: int
    forward_changed: bool
    backward_changed: bool
    full_rebuild: bool
    #: Session version after this edit (N-worst memo key).
    version: int


class IncrementalSTA:
    """Persistent analysis session over one mutable circuit.

    Drop-in timing oracle for optimization loops: construct once, then
    interleave :meth:`replace_cell` / :meth:`resize` edits with
    :meth:`worst_path` / :meth:`n_worst_paths` queries.  All results
    are byte-identical to a fresh :class:`~repro.core.sta.TruePathSTA`
    built on the circuit's current state, on both the scalar
    (``vectorize=False``) and SoA paths.
    """

    def __init__(
        self,
        circuit: Circuit,
        charlib: CharacterizedLibrary,
        temp: float = 25.0,
        vdd: Optional[float] = None,
        input_slew: float = DEFAULT_INPUT_SLEW,
        missing_arc_policy: str = "error",
        vectorize: bool = True,
        full_rebuild: bool = False,
    ):
        circuit.check()
        self.circuit = circuit
        self.charlib = charlib
        self.ec = EngineCircuit(circuit)
        self.calc = DelayCalculator(
            self.ec, charlib, temp=temp, vdd=vdd, input_slew=input_slew,
            missing_arc_policy=missing_arc_policy, vectorize=vectorize,
        )
        self.tg = self.ec.tgraph
        #: Scratch mode: every edit re-derives all state (CI reference).
        self.full_rebuild = bool(full_rebuild)
        #: Bumped per edit; keys the N-worst memo.
        self.version = 0
        self._timing: Optional[ForwardTiming] = None
        self._gate_index: Dict[str, int] = {
            g.inst.name: g.index for g in self.ec.gates
        }
        self._evaluators: Dict[str, CellEvaluator] = {
            g.cell.name: g.evaluator for g in self.ec.gates
        }
        #: sample grid -> per-gate worst output slew over that grid.
        self._slew_peaks: Dict[Tuple[float, ...], List[float]] = {}
        #: sample grid -> gate indices whose peak entry is stale.  An
        #: edit marks its dirty gates stale in *every* cached grid (a
        #: later edit's fixed point may revisit a grid this edit's
        #: replay never touched); entries recompute lazily on read.
        self._peaks_stale: Dict[Tuple[float, ...], Set[int]] = {}
        #: (n, max_paths) -> (version, paths).
        self._nworst_memo: Dict[
            Tuple[int, Optional[int]], Tuple[int, List[TimedPath]]
        ] = {}
        self._distinct_levels = len(set(self.tg.levels))
        obs_metrics.REGISTRY.gauge("incremental.graph_levels").set(
            self._distinct_levels
        )

    # ------------------------------------------------------------------
    # baseline analysis
    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Ensure the session's derived timing state is current.

        Lazy: the initial full analysis runs on first query or first
        edit, not in the constructor."""
        if self._timing is not None:
            return
        with span("incremental.initial_analysis"):
            if self.full_rebuild:
                self.calc.bound_slews()
            elif self.calc._bound_slews is None:
                # Same rounds over the same multiset as the stock fixed
                # point, but retains the per-gate peak tables so later
                # edits re-evaluate only dirty gates.
                self.calc._bound_slews = self._slew_fixed_point()
            self._timing = self.tg.forward_arrivals(self.calc)
            self.calc.ensure_worst_arc_table()
            self.calc.required_bounds()
            self.calc.remaining_bounds()

    # ------------------------------------------------------------------
    # edits
    # ------------------------------------------------------------------
    def replace_cell(
        self, inst_name: str, new_cell: Union[str, Cell]
    ) -> EditReport:
        """Swap one instance's cell for a pin-compatible variant and
        repair the analysis state.  The underlying ``Circuit`` is
        mutated in place (same contract as
        :func:`repro.core.sizing.replace_cell`), so a fresh analysis of
        the circuit object sees the edit too."""
        index = self._gate_index.get(inst_name)
        if index is None:
            raise KeyError(f"unknown instance {inst_name!r}")
        gate = self.ec.gates[index]
        if isinstance(new_cell, str):
            new_cell = self.circuit.library[new_cell]
        if new_cell.inputs != gate.cell.inputs:
            raise ValueError(
                f"{new_cell.name} is not pin-compatible with {gate.cell.name}"
            )
        self.refresh()  # baseline must reflect the pre-edit circuit
        from_cell = gate.cell.name
        self._patch_engine_gate(gate, new_cell)
        return self._after_edit(gate, from_cell)

    def resize(self, inst_name: str, variant_suffix: str = "_X2") -> EditReport:
        """Drive-strength resize: swap to ``<cell><suffix>`` from the
        circuit's library."""
        index = self._gate_index.get(inst_name)
        if index is None:
            raise KeyError(f"unknown instance {inst_name!r}")
        variant = f"{self.ec.gates[index].cell.name}{variant_suffix}"
        if variant not in self.circuit.library:
            raise ValueError(
                f"library has no drive variant {variant!r} for {inst_name}"
            )
        return self.replace_cell(inst_name, variant)

    def _patch_engine_gate(self, gate: EngineGate, new_cell: Cell) -> None:
        """Mutate the indexed gate in place (cell, evaluator, vector
        options) so every live reference -- SoA record lookups, the
        pathfinder's gate table -- sees the new cell without
        re-indexing.  ``input_nets`` survives: pin compatibility means
        the cells' input tuples are equal."""
        inst = gate.inst
        inst.cell = new_cell
        self.circuit._topo_cache = None
        gate.cell = new_cell
        evaluator = self._evaluators.get(new_cell.name)
        if evaluator is None:
            evaluator = CellEvaluator(new_cell)
            self._evaluators[new_cell.name] = evaluator
        gate.evaluator = evaluator
        options: Dict[str, List[VectorOption]] = {}
        for pin in new_cell.inputs:
            opts = []
            for vec in new_cell.sensitization_vectors(pin):
                side = tuple(
                    (self.ec.net_id[inst.pins[side_pin]], bit)
                    for side_pin, bit in sorted(vec.side_values.items())
                )
                opts.append(VectorOption(vec, side, vec.inverting))
            options[pin] = opts
        gate.options = options

    # ------------------------------------------------------------------
    def _dirty_gates(self, gate: EngineGate) -> List[int]:
        """The edited gate plus every gate driving one of its input
        nets (their output load includes the edited gate's pin caps)."""
        dirty = {gate.index}
        for net in gate.input_nets:
            driver = self.ec.driver[net]
            if driver >= 0:
                dirty.add(driver)
        return sorted(dirty)

    def _after_edit(self, gate: EngineGate, from_cell: str) -> EditReport:
        started = time.perf_counter()
        registry = obs_metrics.REGISTRY
        registry.counter("incremental.edits").inc()
        dirty = self._dirty_gates(gate)
        calc = self.calc
        calc.invalidate_gates(dirty, keep_bounds=True)
        calc.refresh_fanout(dirty)
        with span("incremental.refresh"):
            if self.full_rebuild:
                report = self._refresh_full(gate, from_cell, scratch=True)
            else:
                for stale in self._peaks_stale.values():
                    stale.update(dirty)
                if calc._tarrays is not None:
                    if not calc._tarrays.patch_gate(gate.index):
                        registry.counter("incremental.soa_recompiles").inc()
                    calc._tarrays.invalidate_slew_groups()
                new_slews = self._slew_fixed_point()
                if new_slews != calc._bound_slews:
                    # The achievable-slew domain moved: every fitted
                    # worst-delay sweep in the circuit is stale, which
                    # is exactly the case incremental repair cannot
                    # bound.  Count it and rebuild.
                    report = self._refresh_full(
                        gate, from_cell, new_slews=new_slews
                    )
                else:
                    report = self._refresh_cone(gate, from_cell, dirty)
        registry.histogram("incremental.refresh_ms").observe(
            (time.perf_counter() - started) * 1e3
        )
        self.version += 1
        report.version = self.version
        return report

    # ------------------------------------------------------------------
    # cone repair
    # ------------------------------------------------------------------
    def _refresh_cone(
        self, gate: EngineGate, from_cell: str, dirty: List[int]
    ) -> EditReport:
        calc = self.calc
        registry = obs_metrics.REGISTRY
        levels = self.tg.levels
        timing = self._timing

        # Forward: re-propagate arrivals/slews from the dirty gates'
        # output nets in ascending level order.  Levels strictly
        # increase along arcs, so by the time a net pops every source
        # that can still change has already been finalized -- each net
        # is recomputed at most once.
        heap: List[Tuple[int, int]] = []
        queued: Set[int] = set()
        for index in dirty:
            net = self.ec.gates[index].output_net
            if net not in queued:
                queued.add(net)
                heapq.heappush(heap, (levels[net], net))
        cone_gates = 0
        forward_levels: Set[int] = set()
        forward_changed = False
        while heap:
            level, net = heapq.heappop(heap)
            cone_gates += 1
            forward_levels.add(level)
            if self.tg.forward_update_net(calc, net, timing):
                forward_changed = True
                for arc in self.tg.fanout[net]:
                    dst = self.ec.gates[arc.gate_index].output_net
                    if dst not in queued:
                        queued.add(dst)
                        heapq.heappush(heap, (levels[dst], dst))

        # Backward: re-propagate the required/suffix bounds from the
        # dirty gates' input nets in *descending* level order (every
        # influence on a net sits at a strictly higher level, so the
        # max-heap finalizes all of them before the net pops).
        if calc.vectorize:
            # Batch-refill the worst-arc holes the invalidation opened
            # before the scalar sweep reads them one by one.
            calc.ensure_worst_arc_table()
        required = calc.required_bounds()
        suffix = calc.remaining_bounds()
        bheap: List[Tuple[int, int]] = []
        bqueued: Set[int] = set()
        for index in dirty:
            for net in self.ec.gates[index].input_nets:
                if net not in bqueued:
                    bqueued.add(net)
                    heapq.heappush(bheap, (-levels[net], net))
        backward_nets = 0
        backward_levels: Set[int] = set()
        backward_changed = False
        while bheap:
            neg_level, net = heapq.heappop(bheap)
            backward_nets += 1
            backward_levels.add(-neg_level)
            new_req = self.tg.required_through_net(calc, net, required)
            new_suf = self.tg.suffix_through_net(calc, net, suffix)
            if new_req == required[net] and new_suf == suffix[net]:
                continue
            backward_changed = True
            required[net] = new_req
            suffix[net] = new_suf
            for arc in self.tg.fanin[net]:
                gate_in = self.ec.gates[arc.gate_index]
                for src in gate_in.input_nets:
                    if src not in bqueued:
                        bqueued.add(src)
                        heapq.heappush(bheap, (-levels[src], src))
        if backward_changed:
            calc._prune_bounds = None

        levels_reswept = len(forward_levels) + len(backward_levels)
        registry.counter("incremental.cone_gates").inc(cone_gates)
        registry.counter("incremental.levels_reswept").inc(levels_reswept)
        return EditReport(
            gate_name=gate.inst.name,
            from_cell=from_cell,
            to_cell=gate.cell.name,
            cone_gates=cone_gates,
            backward_nets=backward_nets,
            levels_reswept=levels_reswept,
            forward_changed=forward_changed,
            backward_changed=backward_changed,
            full_rebuild=False,
            version=self.version,
        )

    def _refresh_full(
        self,
        gate: EngineGate,
        from_cell: str,
        new_slews: Optional[Tuple[float, ...]] = None,
        scratch: bool = False,
    ) -> EditReport:
        calc = self.calc
        registry = obs_metrics.REGISTRY
        registry.counter("incremental.full_rebuilds").inc()
        calc._worst_arc_cache.clear()
        calc._worst_delay_cache.clear()
        calc._worst_table_complete = False
        calc._required_bounds = None
        calc._remaining_bounds = None
        calc._prune_bounds = None
        if scratch:
            calc._gate_arcs_cache.clear()
            calc._pin_arcs_cache.clear()
            calc._tarrays = None
            calc._bound_slews = None
            self._slew_peaks.clear()
            self._peaks_stale.clear()
            calc.bound_slews()
        else:
            calc._bound_slews = new_slews
        self._timing = self.tg.forward_arrivals(calc)
        calc.ensure_worst_arc_table()
        calc.required_bounds()
        calc.remaining_bounds()
        levels_reswept = 2 * self._distinct_levels
        registry.counter("incremental.cone_gates").inc(len(self.ec.gates))
        registry.counter("incremental.levels_reswept").inc(levels_reswept)
        return EditReport(
            gate_name=gate.inst.name,
            from_cell=from_cell,
            to_cell=gate.cell.name,
            cone_gates=len(self.ec.gates),
            backward_nets=self.ec.num_nets,
            levels_reswept=levels_reswept,
            forward_changed=True,
            backward_changed=True,
            full_rebuild=True,
            version=self.version,
        )

    # ------------------------------------------------------------------
    # slew fixed point with per-gate peak tables
    # ------------------------------------------------------------------
    def _slew_fixed_point(self) -> Tuple[float, ...]:
        """Replay :meth:`DelayCalculator.bound_slews` exactly (same
        grids, ceiling seed, round cap, 1.05x overshoot), but read each
        round's worst slew from a per-gate peak table so only dirty
        gates re-evaluate per edit.  The global max over per-gate peaks
        equals the scalar pass's running max over the identical
        (arc, sample) multiset, so the returned tuple is bitwise the
        one a fresh calculator derives."""
        calc = self.calc
        grid = (calc.charlib.metadata or {}).get("grid", {})
        grid_slews = tuple(float(t) for t in grid.get("t_in", ()))
        ceiling = max((*grid_slews, calc.input_slew, 4 * calc.input_slew))
        for _ in range(_SLEW_CEILING_ROUNDS):
            samples = calc._slew_samples(grid_slews, ceiling)
            worst = max(self._gate_peaks(samples), default=0.0)
            if worst <= ceiling:
                break
            ceiling = 1.05 * worst
        else:
            _log.warning("bound.slew_ceiling_unconverged",
                         circuit=self.ec.circuit.name, ceiling=ceiling)
        return calc._slew_samples(grid_slews, ceiling)

    def _gate_peaks(self, samples: Tuple[float, ...]) -> List[float]:
        peaks = self._slew_peaks.get(samples)
        if peaks is None:
            peaks = self._compute_peaks(samples, None)
            self._slew_peaks[samples] = peaks
            self._peaks_stale[samples] = set()
            return peaks
        stale = self._peaks_stale[samples]
        if stale:
            indices = sorted(stale)
            for index, value in zip(
                indices, self._compute_peaks(samples, indices)
            ):
                peaks[index] = value
            stale.clear()
        return peaks

    def _compute_peaks(
        self, samples: Tuple[float, ...], gate_indices: Optional[List[int]]
    ) -> List[float]:
        calc = self.calc
        if calc.vectorize:
            return calc.tarrays.slew_peaks(samples, gate_indices)
        gates = (self.ec.gates if gate_indices is None
                 else [self.ec.gates[i] for i in gate_indices])
        peaks = []
        for g in gates:
            fo = calc.fo[g.index]
            peak = 0.0
            for arc in calc.gate_arcs(g):
                value = _model_max(arc.slew_model, fo, samples,
                                   calc.temp, calc.vdd)
                if value > peak:
                    peak = value
            peaks.append(peak)
        return peaks

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def arrivals(self) -> List[List[Optional[float]]]:
        """Per-net ``[rise, fall]`` worst arrivals (GBA semantics)."""
        self.refresh()
        return self._timing.arrivals

    def slews(self) -> List[List[Optional[float]]]:
        self.refresh()
        return self._timing.slews

    def required_bounds(self) -> List[float]:
        self.refresh()
        return self.calc.required_bounds()

    def suffix_bounds(self) -> List[float]:
        self.refresh()
        return self.calc.remaining_bounds()

    def n_worst_paths(
        self,
        n: int,
        max_paths: Optional[int] = None,
        budgets: Optional[SearchBudgets] = None,
    ) -> List[TimedPath]:
        """The N slowest true paths, worst first; memoized per session
        version.  Budgeted searches bypass the memo (their results are
        effort-dependent, not pure functions of the circuit)."""
        self.refresh()
        key = (n, max_paths)
        if budgets is None:
            cached = self._nworst_memo.get(key)
            if cached is not None and cached[0] == self.version:
                obs_metrics.REGISTRY.counter(
                    "incremental.nworst_cache_hits"
                ).inc()
                return list(cached[1])
        finder = PathFinder(
            self.ec, self.calc,
            max_paths=max_paths, n_worst=n, budgets=budgets,
        )
        with finder.find_paths() as stream:
            paths = list(stream)
        paths.sort(key=lambda p: p.worst_arrival, reverse=True)
        paths = paths[:n]
        if budgets is None:
            self._nworst_memo[key] = (self.version, list(paths))
        return paths

    def worst_path(
        self,
        max_paths: Optional[int] = None,
        budgets: Optional[SearchBudgets] = None,
    ) -> TimedPath:
        paths = self.n_worst_paths(1, max_paths=max_paths, budgets=budgets)
        if not paths:
            raise ValueError("circuit has no true paths")
        return paths[0]
