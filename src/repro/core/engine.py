"""Indexed circuit state for the path-finding search.

:class:`EngineCircuit` pre-indexes a :class:`~repro.netlist.circuit.Circuit`
(net ids, gate fan-in/fan-out tables, per-pin sensitization vectors with
side nets resolved) so the search never touches dictionaries keyed by
strings.

:class:`EngineState` holds the paper's dual-value node assignment: one
nine-valued entry per net **per polarity component** (component 0 traces
the rising-input case, component 1 the falling-input case -- "the
algorithm computes simultaneously both transitions through a given path
in the same step").  All mutations go through an undo trail so the
search can checkpoint and roll back in O(changes); a merge conflict
kills only the offending component, and the search continues as long as
one component is alive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.logic_values import CellEvaluator, MERGE_TABLE, Value9
from repro.gates.cell import Cell, SensitizationVector
from repro.netlist.circuit import Circuit, Instance

RISING = 0
FALLING = 1
COMPONENTS = (RISING, FALLING)


@dataclass(frozen=True)
class VectorOption:
    """A sensitization vector resolved against a placed gate."""

    vector: SensitizationVector
    #: (net_id, steady bit) for every side input.
    side_assignments: Tuple[Tuple[int, int], ...]
    inverting: bool


@dataclass
class EngineGate:
    """Pre-indexed instance."""

    index: int
    inst: Instance
    cell: Cell
    evaluator: CellEvaluator
    input_nets: Tuple[int, ...]  # cell pin order
    output_net: int
    #: pin name -> vector options
    options: Dict[str, List[VectorOption]]


class EngineCircuit:
    """Static indexed view of a circuit (shared between searches)."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.net_names: List[str] = list(circuit.nets)
        self.net_id: Dict[str, int] = {n: i for i, n in enumerate(self.net_names)}
        n_nets = len(self.net_names)
        self.is_input = [False] * n_nets
        self.is_output = [False] * n_nets
        for name in circuit.inputs:
            self.is_input[self.net_id[name]] = True
        for name in circuit.outputs:
            self.is_output[self.net_id[name]] = True

        evaluators: Dict[str, CellEvaluator] = {}
        self.gates: List[EngineGate] = []
        self.driver: List[int] = [-1] * n_nets  # gate index or -1

        for inst in circuit.topological():
            cell = inst.cell
            if cell.name not in evaluators:
                evaluators[cell.name] = CellEvaluator(cell)
            gate_index = len(self.gates)
            input_nets = tuple(self.net_id[inst.pins[p]] for p in cell.inputs)
            output_net = self.net_id[inst.output_net]
            options: Dict[str, List[VectorOption]] = {}
            for pin in cell.inputs:
                opts = []
                for vec in cell.sensitization_vectors(pin):
                    side = tuple(
                        (self.net_id[inst.pins[side_pin]], bit)
                        for side_pin, bit in sorted(vec.side_values.items())
                    )
                    opts.append(VectorOption(vec, side, vec.inverting))
                options[pin] = opts
            gate = EngineGate(
                gate_index, inst, cell, evaluators[cell.name], input_nets,
                output_net, options,
            )
            self.gates.append(gate)
            self.driver[output_net] = gate_index

        self.input_ids = [self.net_id[n] for n in circuit.inputs]
        self.output_ids = [self.net_id[n] for n in circuit.outputs]
        self._tgraph = None

    @property
    def num_nets(self) -> int:
        return len(self.net_names)

    @property
    def tgraph(self):
        """The circuit's levelized :class:`~repro.core.tgraph.TimingGraph`
        (built lazily, shared by every engine bound to this circuit)."""
        if self._tgraph is None:
            from repro.core.tgraph import TimingGraph

            self._tgraph = TimingGraph(self)
        return self._tgraph

    @property
    def sinks(self) -> List[List[Tuple[int, str]]]:
        """net id -> list of (gate index, pin name); a view of the
        timing graph's fanout arcs (the graph owns the adjacency)."""
        return self.tgraph.sinks


# Trail entry tags.
_T_VALUE = 0
_T_ALIVE = 1
_T_OBLIGATION = 2


class EngineState:
    """Mutable dual-component assignment with checkpoint/rollback."""

    def __init__(self, ec: EngineCircuit):
        self.ec = ec
        n = ec.num_nets
        self.values: List[List[int]] = [
            [Value9.XX] * n for _ in COMPONENTS
        ]
        self.alive: List[bool] = [True, True]
        self._trail: List[Tuple] = []
        self._queue: List[int] = []
        #: Nets carrying a required value that may need backward
        #: justification: list of (net_id, packed 9-value).  Paper-mode
        #: requirements are steady (S0/S1); complete-mode dynamic
        #: justification can also require transitions on internal nets.
        self.obligations: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        return len(self._trail)

    def rollback(self, mark: int) -> None:
        trail = self._trail
        while len(trail) > mark:
            tag, a, b, c = trail.pop()
            if tag == _T_VALUE:
                self.values[a][b] = c
            elif tag == _T_ALIVE:
                self.alive[a] = True
            else:  # _T_OBLIGATION
                self.obligations.pop()
        self._queue.clear()

    # ------------------------------------------------------------------
    # Assignment and implication
    # ------------------------------------------------------------------
    def kill(self, comp: int) -> bool:
        """Kill one polarity component; returns False when none is left."""
        if self.alive[comp]:
            self.alive[comp] = False
            self._trail.append((_T_ALIVE, comp, 0, 0))
        return self.alive[1 - comp]

    def assign(self, net: int, value: int, comp: int) -> bool:
        """Merge ``value`` into one component of a net.

        Returns False when the whole state is dead (both components
        killed).  Enqueues the net for implication when it gained
        information.
        """
        if not self.alive[comp]:
            return self.alive[1 - comp]
        current = self.values[comp][net]
        merged = MERGE_TABLE[current * 9 + value]
        if merged < 0:
            return self.kill(comp)
        if merged != current:
            self._trail.append((_T_VALUE, comp, net, current))
            self.values[comp][net] = merged
            self._queue.append(net)
        return True

    def assign_both(self, net: int, value: int) -> bool:
        self.assign(net, value, RISING)
        self.assign(net, value, FALLING)
        return any(self.alive)

    def require_steady(self, net: int, bit: int) -> bool:
        """Assign a required steady side value and record the obligation."""
        return self.require_value(net, Value9.steady(bit))

    def require_value(self, net: int, value: int) -> bool:
        """Assign a required 9-value to every live component and record
        the justification obligation (transition requirements only make
        sense in single-polarity states; steady ones work everywhere)."""
        if not self.assign(net, value, RISING):
            return False
        if not self.assign(net, value, FALLING):
            return False
        if self.ec.driver[net] >= 0:
            self.obligations.append((net, value))
            self._trail.append((_T_OBLIGATION, 0, 0, 0))
        return True

    def implied_value(self, gate: EngineGate, comp: int) -> int:
        vals = self.values[comp]
        return gate.evaluator.evaluate(
            tuple(vals[n] for n in gate.input_nets)
        )

    def propagate(self) -> bool:
        """Event-driven forward implication until fixpoint.

        Every value gain re-evaluates the sink gates ("each time a logic
        value is assigned to a node, such value is propagated through
        all the gates having such node as an input"), which is what
        surfaces semi-undetermined conflicts early.
        """
        queue = self._queue
        values = self.values
        values0, values1 = values
        alive = self.alive
        all_sinks = self.ec.sinks
        gates = self.ec.gates
        while queue:
            net = queue.pop()
            for gate_index, _pin in all_sinks[net]:
                gate = gates[gate_index]
                if alive[0] and alive[1]:
                    # Dual fast path: away from the transition cone both
                    # components carry identical values, so one gate
                    # evaluation serves both.
                    nets = gate.input_nets
                    ins0 = tuple(values0[n] for n in nets)
                    ins1 = tuple(values1[n] for n in nets)
                    implied0 = gate.evaluator.evaluate(ins0)
                    implied1 = (
                        implied0 if ins0 == ins1
                        else gate.evaluator.evaluate(ins1)
                    )
                    if implied0 != Value9.XX and not self.assign(
                        gate.output_net, implied0, 0
                    ):
                        queue.clear()
                        return False
                    if implied1 != Value9.XX and not self.assign(
                        gate.output_net, implied1, 1
                    ):
                        queue.clear()
                        return False
                    continue
                for comp in COMPONENTS:
                    if not self.alive[comp]:
                        continue
                    implied = self.implied_value(gate, comp)
                    if implied == Value9.XX:
                        continue
                    if not self.assign(gate.output_net, implied, comp):
                        queue.clear()
                        return False
        return any(self.alive)

    # ------------------------------------------------------------------
    # Justification support
    # ------------------------------------------------------------------
    def is_justified(self, net: int, required: int) -> bool:
        """Whether the net's required 9-value is already implied by its
        driver's inputs in every live component."""
        gate_index = self.ec.driver[net]
        if gate_index < 0:
            return True  # primary inputs are justified by definition
        gate = self.ec.gates[gate_index]
        for comp in COMPONENTS:
            if not self.alive[comp]:
                continue
            if self.implied_value(gate, comp) != required:
                return False
        return True

    def first_unjustified(self, start: int = 0) -> Optional[Tuple[int, int, int]]:
        """First unjustified obligation at or after index ``start``.

        Justification is monotone along any trail extension (implied
        values only gain information, and rollback restores a state in
        which the prefix was already verified), so callers may resume
        the scan from the last verified index instead of 0.

        Returns ``(index, net, required)`` or None.
        """
        obligations = self.obligations
        for index in range(start, len(obligations)):
            net, required = obligations[index]
            if not self.is_justified(net, required):
                return (index, net, required)
        return None

    # ------------------------------------------------------------------
    def input_vector(self, comp: int) -> Dict[str, Optional[object]]:
        """The primary-input assignment of one component.

        Steady nets report their bit, the transition source reports
        ``"T"``, unconstrained inputs report None (don't-care).
        """
        out: Dict[str, Optional[object]] = {}
        for net in self.ec.input_ids:
            value = self.values[comp][net]
            if value in (Value9.S0, Value9.X0, Value9.ZX):
                out[self.ec.net_names[net]] = 0 if value == Value9.S0 else None
            elif value in (Value9.S1, Value9.X1, Value9.OX):
                out[self.ec.net_names[net]] = 1 if value == Value9.S1 else None
            elif value in (Value9.RISE, Value9.FALL):
                out[self.ec.net_names[net]] = "T"
            else:
                out[self.ec.net_names[net]] = None
        return out
