"""Single-pass true-path enumeration (the paper's algorithm, Sec. IV.B).

The search starts at a primary input carrying a transition (both
polarities at once, thanks to the dual-value engine), and advances node
to node.  At the current node it tries, for every fanout gate and every
sensitization vector of the traversed pin:

1. assign the vector's steady side values (requirements),
2. forward-propagate implications (early conflict detection through the
   semi-undetermined values),
3. justify every pending requirement back to the primary inputs
   (complete backtracking search within the step),
4. compute the arc delay for each surviving polarity from the
   vector-resolved polynomial arcs, propagating slews.

Choice points (fanout stems and multi-vector pins) are saved states; a
logic incompatibility discards every path sharing the current sub-path
and resumes from the last saved state -- exactly the paper's control
flow.  Paths with the same course but different vectors are kept
distinct.  On reaching an output the path is recorded and the search
returns to the last saved state.

Hot-path shortcut: an extension whose vector adds no *new* unjustified
requirement beyond the already-justified prefix needs no justification
re-solve -- forward implication alone proves it -- which the search
detects by resuming the obligation scan at the prefix's verified index
(``pathfinder.justify_skipped`` counts these pure-forward extensions).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.delaycalc import DelayCalculator
from repro.core.engine import (
    COMPONENTS,
    EngineCircuit,
    EngineGate,
    EngineState,
    FALLING,
    RISING,
    VectorOption,
)
from repro.core.justification import Justifier, JustifyResult
from repro.core.logic_values import Value9
from repro.core.path import PathStep, PolarityTiming, TimedPath
from repro.core.tgraph import PruneBounds
from repro.obs import metrics as obs_metrics
from repro.obs.tracing import span
from repro.resilience.budgets import (
    BudgetLedger,
    CompletenessReport,
    OriginOutcome,
    SearchBudgets,
)

#: Extensions between progress-hook invocations -- a power of two so
#: the hot loop's check is one branch on a modulo of a constant.
PROGRESS_EXTENSION_INTERVAL = 1024


@dataclass
class SearchStats:
    """Counters exposed by one search run.

    The hot loop updates plain attributes (free); :meth:`publish`
    mirrors them into the process-wide :mod:`repro.obs.metrics`
    registry as ``pathfinder.*`` counters, both unlabeled and labeled
    with the circuit name, publishing only the delta since the last
    call so repeated searches accumulate correctly.
    """

    paths_found: int = 0
    extensions_tried: int = 0
    conflicts: int = 0
    justification_backtracks: int = 0
    justification_cubes: int = 0
    justification_aborts: int = 0
    justify_skipped: int = 0
    states_saved: int = 0
    pruned: int = 0
    #: Prunes only the backward required-time bound achieved -- the
    #: legacy context-free suffix sum would have kept the extension.
    bound_prunes: int = 0
    #: Runs (or shards) whose search budget tripped before exhaustion;
    #: the path list is partial and tagged with per-origin completeness.
    budget_trips: int = 0
    cpu_seconds: float = 0.0
    _published: Dict[str, float] = field(default_factory=dict, repr=False)

    def as_dict(self) -> Dict[str, float]:
        return {k: v for k, v in self.__dict__.items() if not k.startswith("_")}

    def merge(self, other: Dict[str, float]) -> None:
        """Fold another run's counter dict (:meth:`as_dict`) into this
        one -- how the parallel driver combines per-shard stats."""
        for name, value in other.items():
            if name.startswith("_"):
                continue
            setattr(self, name, getattr(self, name, 0) + value)

    def publish(self, circuit: Optional[str] = None) -> None:
        registry = obs_metrics.REGISTRY
        for name, value in self.as_dict().items():
            delta = value - self._published.get(name, 0)
            # Register even zero-valued counters so a snapshot always
            # shows the full pathfinder effort schema.
            registry.counter(f"pathfinder.{name}").inc(max(delta, 0))
            if circuit:
                registry.counter(f"pathfinder.{name}", circuit=circuit).inc(
                    max(delta, 0)
                )
            self._published[name] = value


@dataclass
class _Arc:
    """How the search entered a frame (None for the root frame)."""

    step: PathStep
    #: component -> (arrival, slew) at the frame's net.
    timing: Dict[int, Tuple[float, float]]
    #: All intrinsic steady requirements accumulated along the prefix
    #: (complete mode only).
    requirements: Tuple[Tuple[int, int], ...] = ()
    #: component -> justifying PI vector from the global re-solve
    #: (complete mode only; paper mode extracts it from the live state).
    input_vectors: Dict[int, Dict] = field(default_factory=dict)


@dataclass
class _Frame:
    net: int
    mark: int
    options: Iterator
    arc: Optional[_Arc]
    #: Obligation count verified justified when the frame opened; an
    #: extension's obligation scan resumes here (justification is
    #: monotone along a trail extension, and rollback to ``mark``
    #: restores exactly the verified prefix).
    justified: int = 0


class PathStream:
    """Iterator over one search run with deterministic stats publication.

    Wraps the finder's generator so that abandoning the iteration early
    (e.g. stopping after N paths) still publishes :class:`SearchStats`
    and the ``delaycalc.*`` counter deltas the moment :meth:`close` runs
    -- instead of whenever the garbage collector finalizes the
    generator, which leaves metric snapshots taken in between silently
    incomplete.  Exhausting the iterator publishes as well; ``close``
    is idempotent.  Usable as a context manager::

        with finder.find_paths() as stream:
            for path in stream:
                ...
    """

    def __init__(self, finder: "PathFinder", inputs: Optional[Sequence[str]]):
        self._finder = finder
        self._gen = finder._iter_paths(inputs)
        self._started = time.perf_counter()
        calc = finder.calc
        self._counters_before = (
            calc.arc_evaluations, calc.arc_cache_hits, calc.arc_cache_misses,
            calc.arc_substitutions,
        )
        self._published = False

    def __iter__(self) -> "PathStream":
        return self

    def __next__(self) -> TimedPath:
        try:
            return next(self._gen)
        except StopIteration:
            self.close()
            raise

    def close(self) -> None:
        """Stop the search (if still running) and publish its stats."""
        if self._published:
            return
        self._published = True
        self._gen.close()
        elapsed = time.perf_counter() - self._started
        self._finder._publish_run(elapsed, self._counters_before)

    def __enter__(self) -> "PathStream":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass


class PathFinder:
    """Enumerates true paths with exhaustive vector exploration.

    Parameters
    ----------
    ec / calc:
        Indexed circuit and its delay calculator.
    justify_backtrack_limit:
        Safety cap on justification backtracks per step (None =
        complete; the developed tool runs complete).
    max_paths:
        Stop after this many recorded paths (None = exhaustive).
    n_worst:
        When set, prune extensions that provably cannot reach the
        current N-th worst arrival, using the timing graph's backward
        required-time bound (per-arc worst delays; provably tighter
        than, and dominated-tested against, the legacy per-gate suffix
        sum).
    bounds:
        Precomputed :class:`~repro.core.tgraph.PruneBounds` for the
        ``n_worst`` pruning.  Defaults to ``calc.prune_bounds()``; the
        parallel driver computes the bounds once in the parent process
        and passes them here so worker shards skip the backward pass.
    single_polarity:
        Restrict the trace to one input polarity (``RISING`` or
        ``FALLING``).  The default (None) is the paper's dual-value
        mode; the restriction exists for the ablation that measures
        what the dual-value logic system buys ("avoids passing twice
        through the same path").
    complete:
        The paper's control flow commits to the first justification
        found at each step and never revisits it on a later conflict
        ("jumps to the last saved point"), which can misclassify a few
        sensitizations as false when an early justification choice
        blocks a later requirement.  ``complete=True`` (an extension
        beyond the paper) re-solves the *whole* accumulated requirement
        set per polarity at every step, which is provably complete --
        validated against brute force in the tests -- at roughly the
        cost of one extra justification pass per extension.
    justify_skip:
        Enable the pure-forward-implication fast path that elides the
        per-step justification re-solve when an extension adds no new
        unjustified requirement (on by default; the toggle exists for
        A/B effort measurements in the benchmarks).
    budgets:
        Optional :class:`~repro.resilience.budgets.SearchBudgets`
        (wall-clock / extension / backtrack caps).  An exhausted budget
        stops the search *cleanly*: recorded paths are kept, and
        :attr:`completeness` tags every origin ``complete`` /
        ``partial`` / ``skipped`` so callers can attach sound GBA
        bounds to the unfinished ones (anytime degraded mode).
    """

    def __init__(
        self,
        ec: EngineCircuit,
        calc: DelayCalculator,
        justify_backtrack_limit: Optional[int] = None,
        max_paths: Optional[int] = None,
        n_worst: Optional[int] = None,
        single_polarity: Optional[int] = None,
        complete: bool = False,
        justify_skip: bool = True,
        bounds: Optional[PruneBounds] = None,
        budgets: Optional[SearchBudgets] = None,
        progress: Optional[Callable[["PathFinder"], None]] = None,
    ):
        self.ec = ec
        self.calc = calc
        self.justify_backtrack_limit = justify_backtrack_limit
        self.max_paths = max_paths
        self.n_worst = n_worst
        self.single_polarity = single_polarity
        self.complete = complete
        self.justify_skip = justify_skip
        self.budgets = budgets
        #: Optional heartbeat hook (called with the finder every
        #: :data:`PROGRESS_EXTENSION_INTERVAL` extensions and on every
        #: recorded path); the hook throttles itself on wall clock.
        self.progress = progress
        #: Worst arrival recorded so far (the live "best bound").
        self.best_arrival: Optional[float] = None
        self.completeness = CompletenessReport()
        self._ledger: Optional[BudgetLedger] = None
        self._origin: int = -1
        self.stats = SearchStats()
        self._bounds: Optional[PruneBounds] = None
        self._best: List[float] = []  # min-heap of the N best arrivals
        self._stream: Optional[PathStream] = None
        if n_worst is not None:
            self._bounds = bounds if bounds is not None else calc.prune_bounds()
            # The pruning hot loop reads calc.worst_arc_delay per
            # traversal; with shipped bounds the calculator may not have
            # swept yet, so batch-fill the whole worst-arc table now
            # instead of one lazy scalar sweep per first read (no-op in
            # scalar mode and when the table was seeded or self-built).
            calc.ensure_worst_arc_table()

    # ------------------------------------------------------------------
    def find_paths(
        self, inputs: Optional[Sequence[str]] = None
    ) -> PathStream:
        """Stream every true path (x vector combination) of the circuit.

        ``inputs`` restricts the origins (default: all primary inputs,
        in declaration order).  The returned :class:`PathStream` is a
        plain iterator that additionally supports ``close()`` and the
        context-manager protocol for deterministic stats publication.
        """
        stream = PathStream(self, inputs)
        self._stream = stream
        return stream

    def close(self) -> None:
        """Close (and publish) the most recent :meth:`find_paths` run."""
        if self._stream is not None:
            self._stream.close()

    def __enter__(self) -> "PathFinder":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _publish_run(
        self, elapsed: float, counters_before: Tuple[int, int, int, int]
    ) -> None:
        self.stats.cpu_seconds += elapsed
        name = self.ec.circuit.name
        self.stats.publish(name)
        calc = self.calc
        registry = obs_metrics.REGISTRY
        deltas = (
            ("delaycalc.arc_evaluations",
             calc.arc_evaluations - counters_before[0]),
            ("delaycalc.arc_cache_hits",
             calc.arc_cache_hits - counters_before[1]),
            ("delaycalc.arc_cache_misses",
             calc.arc_cache_misses - counters_before[2]),
            ("delaycalc.arc_substitutions",
             calc.arc_substitutions - counters_before[3]),
        )
        for key, delta in deltas:
            # Register even a zero delta so the snapshot schema is stable.
            registry.counter(key).inc(delta)
            registry.counter(key, circuit=name).inc(delta)

    def _iter_paths(
        self, inputs: Optional[Sequence[str]]
    ) -> Iterator[TimedPath]:
        origin_ids = list(
            self.ec.input_ids
            if inputs is None
            else [self.ec.net_id[name] for name in inputs]
        )
        if self.budgets is not None and self.budgets.bounded():
            self._ledger = BudgetLedger(self.budgets)
        outcomes = self.completeness.origins
        outcomes.clear()
        names = self.ec.net_names
        tripped = False
        try:
            for index, origin in enumerate(origin_ids):
                name = names[origin]
                if self._ledger is not None and self._ledger.exhausted:
                    outcomes[name] = OriginOutcome(name, "skipped")
                    continue
                before = self.stats.paths_found
                # Pre-registered as partial so an abandoned iteration
                # (early close, SIGINT) still reports truthfully.
                outcome = OriginOutcome(name, "partial")
                outcomes[name] = outcome
                yield from self._search_from(origin)
                outcome.paths_found = self.stats.paths_found - before
                if self._ledger is not None and self._ledger.exhausted:
                    if not tripped:
                        tripped = True
                        self.stats.budget_trips += 1
                elif not self._done():
                    outcome.status = "complete"
                if self._done():
                    # The max_paths cap stopped this origin mid-search:
                    # it stays partial, the rest were never visited.
                    self._mark_unvisited(origin_ids[index + 1:])
                    return
        except GeneratorExit:
            self._mark_unvisited(origin_ids)
            raise

    def _mark_unvisited(self, origin_ids: Sequence[int]) -> None:
        """Tag origins never searched this run as ``skipped``."""
        outcomes = self.completeness.origins
        names = self.ec.net_names
        for origin in origin_ids:
            outcomes.setdefault(names[origin],
                                OriginOutcome(names[origin], "skipped"))

    def _done(self) -> bool:
        return self.max_paths is not None and self.stats.paths_found >= self.max_paths

    # ------------------------------------------------------------------
    def _options_for(self, net: int) -> List[Tuple[EngineGate, str, VectorOption]]:
        out = []
        for gate_index, pin in self.ec.sinks[net]:
            gate = self.ec.gates[gate_index]
            for option in gate.options[pin]:
                out.append((gate, pin, option))
        return out

    def _search_from(self, origin: int) -> Iterator[TimedPath]:
        self._origin = origin
        state = EngineState(self.ec)
        state.assign(origin, Value9.RISE, RISING)
        state.assign(origin, Value9.FALL, FALLING)
        if self.single_polarity is not None:
            state.kill(1 - self.single_polarity)
        if not state.propagate():
            return
        root_timing = {
            comp: (0.0, self.calc.input_slew)
            for comp in COMPONENTS
            if state.alive[comp]
        }
        stack: List[_Frame] = [
            _Frame(
                net=origin,
                mark=state.checkpoint(),
                options=iter(self._options_for(origin)),
                arc=_Arc(
                    step=None,  # type: ignore[arg-type]
                    timing=root_timing,
                ),
                justified=len(state.obligations),
            )
        ]
        self.stats.states_saved += 1

        ledger = self._ledger
        progress = self.progress
        while stack:
            frame = stack[-1]
            applied = None
            for gate, pin, option in frame.options:
                state.rollback(frame.mark)
                if ledger is not None and not ledger.charge_extension():
                    return  # budget exhausted: keep recorded paths
                self.stats.extensions_tried += 1
                if (progress is not None and
                        not self.stats.extensions_tried
                        % PROGRESS_EXTENSION_INTERVAL):
                    progress(self)
                if self._prune(frame, gate, pin):
                    self.stats.pruned += 1
                    continue
                with span("pathfinder.step"):
                    arc = self._apply(state, frame, gate, pin, option)
                if ledger is not None and ledger.exhausted:
                    return  # backtrack budget tripped inside the step
                if arc is None:
                    self.stats.conflicts += 1
                    continue
                applied = (gate, arc)
                break
            if applied is None:
                state.rollback(frame.mark)
                stack.pop()
                continue
            gate, arc = applied
            out_net = gate.output_net
            child = _Frame(
                net=out_net,
                mark=state.checkpoint(),
                options=iter(self._options_for(out_net)),
                arc=arc,
                justified=len(state.obligations),
            )
            stack.append(child)
            self.stats.states_saved += 1
            if self.ec.is_output[out_net]:
                path = self._record(state, stack)
                if path is not None:
                    if (self.best_arrival is None
                            or path.worst_arrival > self.best_arrival):
                        self.best_arrival = path.worst_arrival
                    if progress is not None:
                        progress(self)
                    yield path
                    if self._done():
                        return

    # ------------------------------------------------------------------
    def _prune(self, frame: _Frame, gate: EngineGate, pin: str) -> bool:
        """Whether extending through (gate, pin) provably cannot reach
        the current N-th worst arrival.

        The bound on any completion is the traversed arc's own worst
        delay plus the backward required-time bound at the gate output
        -- both maximized over the achievable-slew domain, so pruning
        keeps the top-N set exact.  When the tighter bound fires where
        the legacy per-gate suffix sum would have kept the extension,
        ``bound_prunes`` records the win.
        """
        if self._bounds is None or len(self._best) < (self.n_worst or 0):
            return False
        threshold = self._best[0]
        through = (
            self.calc.worst_arc_delay(gate, pin)
            + self._bounds.required[gate.output_net]
        )
        timing = frame.arc.timing
        for _comp, (arrival, _slew) in timing.items():
            if arrival + through >= threshold:
                return False
        loose = (
            self.calc.worst_gate_delay(gate)
            + self._bounds.suffix[gate.output_net]
        )
        for _comp, (arrival, _slew) in timing.items():
            if arrival + loose >= threshold:
                self.stats.bound_prunes += 1
                break
        return True

    def _apply(
        self,
        state: EngineState,
        frame: _Frame,
        gate: EngineGate,
        pin: str,
        option: VectorOption,
    ) -> Optional[_Arc]:
        for net, bit in option.side_assignments:
            if not state.require_steady(net, bit):
                return None
        if not state.propagate():
            return None

        requirements = frame.arc.requirements + option.side_assignments
        input_vectors: Dict[int, Dict] = {}
        if self.complete:
            if (
                self.justify_skip
                and not option.side_assignments
                and frame.arc.input_vectors
            ):
                # The accumulated requirement set is unchanged, so the
                # parent's per-polarity global re-solve (a deterministic
                # function of origin + requirements alone) still holds;
                # reuse its verdicts and witness vectors.
                self.stats.justify_skipped += 1
                sensitizable = set()
                for comp in frame.arc.timing:
                    if state.alive[comp] and comp in frame.arc.input_vectors:
                        sensitizable.add(comp)
                        input_vectors[comp] = frame.arc.input_vectors[comp]
            else:
                # Global re-solve per polarity: complete, immune to stale
                # justification commitments from earlier steps.
                sensitizable = set()
                with span("pathfinder.justify"):
                    for comp in frame.arc.timing:
                        if not state.alive[comp]:
                            continue
                        vector = self._check_polarity(comp, requirements)
                        if vector is not None:
                            sensitizable.add(comp)
                            input_vectors[comp] = vector
            if not sensitizable:
                return None
        else:
            with span("pathfinder.justify"):
                # Disabled skip == the original control flow: always run
                # the justifier, scanning every obligation from scratch.
                pending = (
                    state.first_unjustified(frame.justified)
                    if self.justify_skip
                    else (0,)
                )
                if pending is None:
                    # Pure-forward extension: every requirement (old and
                    # new) is already implied, so the re-solve would be
                    # a no-op.
                    self.stats.justify_skipped += 1
                else:
                    justifier = Justifier(
                        state,
                        backtrack_limit=self.justify_backtrack_limit,
                        scan_from=pending[0],
                    )
                    result = justifier.justify()
                    self.stats.justification_backtracks += justifier.backtracks
                    self.stats.justification_cubes += justifier.cubes_tried
                    if self._ledger is not None:
                        self._ledger.charge_backtracks(justifier.backtracks)
                    if result is JustifyResult.ABORTED:
                        self.stats.justification_aborts += 1
                        return None
                    if result is not JustifyResult.SAT:
                        return None
            sensitizable = {
                comp for comp in frame.arc.timing if state.alive[comp]
            }

        out_net = gate.output_net
        timing: Dict[int, Tuple[float, float]] = {}
        with span("pathfinder.delaycalc"):
            for comp, (arrival, slew) in frame.arc.timing.items():
                if comp not in sensitizable:
                    continue
                in_value = state.values[comp][frame.net]
                out_value = state.values[comp][out_net]
                if not Value9.is_transition(in_value) or not Value9.is_transition(
                    out_value
                ):
                    continue
                input_rising = in_value == Value9.RISE
                output_rising = out_value == Value9.RISE
                delay, out_slew = self.calc.arc_timing(
                    gate, pin, option.vector.vector_id, input_rising,
                    output_rising, slew
                )
                timing[comp] = (arrival + delay, out_slew)
        if not timing:
            return None
        step = PathStep(
            gate_name=gate.inst.name,
            cell_name=gate.cell.name,
            pin=pin,
            vector_id=option.vector.vector_id,
            case=option.vector.case,
            fo=self.calc.fo[gate.index],
        )
        return _Arc(step=step, timing=timing, requirements=requirements,
                    input_vectors=input_vectors)

    def _check_polarity(
        self, comp: int, requirements: Tuple[Tuple[int, int], ...]
    ) -> Optional[Dict]:
        """Complete-mode satisfiability check of one polarity: a fresh
        solve of the whole requirement set.  Returns a justifying PI
        vector, or None when the polarity is unsensitizable."""
        scratch = EngineState(self.ec)
        scratch.kill(1 - comp)
        scratch.assign(
            self._origin,
            Value9.RISE if comp == RISING else Value9.FALL,
            comp,
        )
        if not scratch.propagate():
            return None
        for net, bit in requirements:
            if not scratch.require_steady(net, bit):
                return None
        if not scratch.propagate():
            return None
        justifier = Justifier(
            scratch,
            backtrack_limit=self.justify_backtrack_limit,
            dynamic=True,
            origin=self._origin,
        )
        result = justifier.justify()
        self.stats.justification_backtracks += justifier.backtracks
        self.stats.justification_cubes += justifier.cubes_tried
        if self._ledger is not None:
            self._ledger.charge_backtracks(justifier.backtracks)
        if result is JustifyResult.ABORTED:
            self.stats.justification_aborts += 1
            return None
        if result is not JustifyResult.SAT:
            return None
        return scratch.input_vector(comp)

    # ------------------------------------------------------------------
    def _record(self, state: EngineState, stack: List[_Frame]) -> Optional[TimedPath]:
        frames = [f for f in stack if f.arc is not None]
        root, rest = frames[0], frames[1:]
        if not rest:
            return None  # degenerate: input is also an output
        nets = tuple(self.ec.net_names[f.net] for f in frames)
        steps = tuple(f.arc.step for f in rest)
        multi_vector = any(
            len(self.ec.gates[self.ec.driver[self.ec.net_id[nets[k + 1]]]].options[
                steps[k].pin
            ]) > 1
            for k in range(len(steps))
        )
        leaf = rest[-1]
        polarity: Dict[int, PolarityTiming] = {}
        for comp, (arrival, slew) in leaf.arc.timing.items():
            if not state.alive[comp]:
                continue
            gate_delays: List[float] = []
            gate_slews: List[float] = []
            previous = 0.0
            complete = True
            for f in rest:
                if comp not in f.arc.timing:
                    complete = False
                    break
                arr, sl = f.arc.timing[comp]
                gate_delays.append(arr - previous)
                gate_slews.append(sl)
                previous = arr
            if not complete:
                continue
            out_value = state.values[comp][leaf.net]
            input_vector = (
                leaf.arc.input_vectors[comp]
                if self.complete
                else state.input_vector(comp)
            )
            polarity[comp] = PolarityTiming(
                input_rising=comp == RISING,
                output_rising=out_value == Value9.RISE,
                arrival=arrival,
                slew=slew,
                gate_delays=gate_delays,
                gate_slews=gate_slews,
                input_vector=input_vector,
            )
        if not polarity:
            return None
        path = TimedPath(
            circuit_name=self.ec.circuit.name,
            nets=nets,
            steps=steps,
            rise=polarity.get(RISING),
            fall=polarity.get(FALLING),
            multi_vector=multi_vector,
        )
        self.stats.paths_found += 1
        if self.n_worst is not None:
            heapq.heappush(self._best, path.worst_arrival)
            if len(self._best) > self.n_worst:
                heapq.heappop(self._best)
        return path
