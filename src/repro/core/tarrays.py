"""Structure-of-arrays compilation of the timing graph.

The scalar engines in :mod:`repro.core.tgraph` and
:mod:`repro.core.delaycalc` walk Python objects arc by arc and call
``model.evaluate`` once per traversal.  That is fine for the search hot
loop (which is dominated by branching, not evaluation), but the three
*sweep* passes -- the GBA forward pass, the backward required-time
bound and the achievable-slew fixed point -- evaluate every arc of the
circuit over a dense slew grid and spend their time in Python dispatch.

:class:`TimingArrays` compiles the levelized graph once per
calculator into flat numpy arrays indexed by *traversal record* (one
record per ``arc x sensitization option x input polarity``) and runs
the sweeps level by level with **one** ``evaluate_many`` call per
(level, model group) instead of one ``evaluate`` per record:

* ``forward_arrivals`` -- level-batched worst arrival/slew scatter-max;
* ``max_slew`` -- one batched sweep per fixed-point round of
  :meth:`DelayCalculator.bound_slews`;
* ``prefill_worst_arcs`` -- fills the per-(gate, pin) worst-arc-delay
  cache with one batched sweep per delay model;
* ``backward_required_bounds`` -- level-batched reverse scatter-max.

**Byte identity.**  Results are bitwise-equal to the scalar passes, not
merely close: the per-record arithmetic (``arrival = arrival_in +
delay``) replays the scalar operation on the same IEEE doubles (the
:class:`~repro.charlib.model.DelayModel` batch-equivalence law makes
``evaluate_many`` rows bitwise-equal to ``evaluate``), and every
reduction is a plain maximum over the identical multiset of values --
``np.maximum.at`` is order-independent because ``max`` over floats is
exact.  ``tests/test_core_tarrays.py`` pins the equivalence over the
ISCAS suite, fuzz netlists and degenerate graphs for both model
families.

Divergences that are *allowed*: evaluation/cache counters (the batched
path resolves arcs at compile time), log ordering, and which of several
missing arcs raises first under the ``error`` policy (both paths raise
:class:`~repro.core.delaycalc.MissingArcsError`, but the scalar pass
discovers missing arcs in gate order while the batched pass discovers
them level by level).

:class:`CompiledTables` is the picklable by-product: the corner-pure
derived tables (bound slews, worst arc delays, pruning bounds) the
parallel driver computes once in the parent and ships to worker shards
so every shard skips its own backward sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.charlib.lut import LutModel
from repro.charlib.polynomial import PolynomialModel
from repro.charlib.store import BLIND
from repro.core.tgraph import ForwardTiming

if TYPE_CHECKING:  # import cycle: delaycalc owns the lazy TimingArrays
    from repro.charlib.model import DelayModel
    from repro.core.delaycalc import DelayCalculator


@dataclass(frozen=True)
class CompiledTables:
    """Derived timing tables of one (circuit, corner), picklable.

    Computed once by the parent process (``export_tables``) and seeded
    into worker-shard calculators (``seed_tables``) so shards reuse the
    parent's slew fixed point, worst-arc sweeps and pruning bounds
    instead of redoing them per process.  Values are plain floats --
    byte-identical to what each shard would have computed itself.
    """

    #: Achievable-slew sample grid (``DelayCalculator.bound_slews``).
    bound_slews: Tuple[float, ...]
    #: (gate index, pin) -> worst arc delay over the slew domain.
    worst_arc: Dict[Tuple[int, str], float] = field(repr=False)
    #: Per-net backward required-time bound (``PruneBounds.required``).
    required: Tuple[float, ...] = field(repr=False)
    #: Per-net legacy suffix bound (``PruneBounds.suffix``).
    suffix: Tuple[float, ...] = field(repr=False)


class _GenericGroup:
    """Records evaluated through one model's own batch kernel -- the
    fallback for model families without a fused cross-model kernel."""

    __slots__ = ("idx", "model")

    def __init__(self, idx: np.ndarray, model: "DelayModel"):
        self.idx = idx
        self.model = model

    def eval(self, pts: np.ndarray, sel) -> np.ndarray:
        return self.model.evaluate_many(pts)


class _PolyGroup:
    """Records of *different* polynomial models fused into one kernel.

    Models sharing an orders tuple share the scalar evaluator's exact
    term sequence, so their coefficient tensors and normalizations can
    be stacked per record and the whole group evaluated with one pass
    of the term loop -- the per-row operations (affine normalization,
    power ladder, left-associated term products, sequential term
    accumulation) are the same IEEE doubles in the same order as
    ``PolynomialModel.evaluate``, just laid out row-wise.  This is what
    keeps the level batches large: without cross-model fusion a
    cell-diverse circuit degenerates to a handful of records per
    (level, model) and the batched pass loses to the scalar one.
    """

    __slots__ = ("idx", "orders", "coeffs", "centers", "scales")

    def __init__(self, idx, orders, coeffs, centers, scales):
        self.idx = idx
        self.orders = orders
        self.coeffs = coeffs      # (n_records, *(orders + 1))
        self.centers = centers    # (n_records, 4)
        self.scales = scales      # (n_records, 4)

    def eval(self, pts: np.ndarray, sel) -> np.ndarray:
        c = self.coeffs[sel]
        x = (pts - self.centers[sel]) / self.scales[sel]
        ladder = PolynomialModel._power_ladder
        pow0 = ladder(x[:, 0], self.orders[0])
        pow1 = ladder(x[:, 1], self.orders[1])
        pow2 = ladder(x[:, 2], self.orders[2])
        pow3 = ladder(x[:, 3], self.orders[3])
        acc = np.zeros(pts.shape[0])
        for i, p0 in enumerate(pow0):
            for j, p1 in enumerate(pow1):
                for k, p2 in enumerate(pow2):
                    for l, p3 in enumerate(pow3):
                        acc += c[:, i, j, k, l] * p0 * p1 * p2 * p3
        return acc


class _LutGroup:
    """Records of different LUT models (same axes) fused into one
    bilinear kernel with per-record tables and derating constants --
    the LUT counterpart of :class:`_PolyGroup`, replaying
    ``LutModel.evaluate`` elementwise."""

    __slots__ = ("idx", "t_axis", "f_axis", "tables",
                 "ref_temp", "ref_vdd", "k_temp", "k_vdd")

    def __init__(self, idx, t_axis, f_axis, tables,
                 ref_temp, ref_vdd, k_temp, k_vdd):
        self.idx = idx
        self.t_axis = t_axis
        self.f_axis = f_axis
        self.tables = tables      # (n_records, len(t_axis), len(f_axis))
        self.ref_temp = ref_temp
        self.ref_vdd = ref_vdd
        self.k_temp = k_temp
        self.k_vdd = k_vdd

    def eval(self, pts: np.ndarray, sel) -> np.ndarray:
        tables = self.tables[sel]
        fo, t_in, temp, vdd = pts.T
        i = np.clip(np.searchsorted(self.t_axis, t_in) - 1, 0,
                    len(self.t_axis) - 2)
        j = np.clip(np.searchsorted(self.f_axis, fo) - 1, 0,
                    len(self.f_axis) - 2)
        ti0, ti1 = self.t_axis[i], self.t_axis[i + 1]
        fj0, fj1 = self.f_axis[j], self.f_axis[j + 1]
        wi = np.clip((t_in - ti0) / (ti1 - ti0), 0.0, 1.0)
        wj = np.clip((fo - fj0) / (fj1 - fj0), 0.0, 1.0)
        r = np.arange(tables.shape[0])
        base = (
            tables[r, i, j] * (1 - wi) * (1 - wj)
            + tables[r, i + 1, j] * wi * (1 - wj)
            + tables[r, i, j + 1] * (1 - wi) * wj
            + tables[r, i + 1, j + 1] * wi * wj
        )
        derate = (1.0 + self.k_temp[sel] * (temp - self.ref_temp[sel])
                  + self.k_vdd[sel] * (vdd - self.ref_vdd[sel]))
        return base * derate


def _fusion_key(model) -> Tuple:
    """Partition key: which records can share one fused kernel call."""
    if isinstance(model, PolynomialModel):
        return ("poly", model.orders)
    if isinstance(model, LutModel):
        return ("lut", model.t_in_axis.tobytes(), model.fo_axis.tobytes())
    return ("generic", id(model))


def _build_groups(pairs: List[Tuple[int, "DelayModel"]]) -> List:
    """Fused evaluation groups for (record, model) pairs, in first-seen
    key order (deterministic; the grouping cannot change results, only
    batch sizes, since max reductions are order-independent)."""
    buckets: Dict[Tuple, Tuple[List[int], List]] = {}
    order: List[Tuple] = []
    for rec, model in pairs:
        key = _fusion_key(model)
        bucket = buckets.get(key)
        if bucket is None:
            bucket = ([], [])
            buckets[key] = bucket
            order.append(key)
        bucket[0].append(rec)
        bucket[1].append(model)
    groups = []
    for key in order:
        recs, models = buckets[key]
        idx = np.asarray(recs, dtype=np.intp)
        if key[0] == "poly":
            groups.append(_PolyGroup(
                idx, key[1],
                np.stack([m.coeffs for m in models]),
                np.asarray([m.norm.centers for m in models]),
                np.asarray([m.norm.scales for m in models]),
            ))
        elif key[0] == "lut":
            first = models[0]
            groups.append(_LutGroup(
                idx, first.t_in_axis, first.fo_axis,
                np.stack([m.table for m in models]),
                np.asarray([m.ref_temp for m in models]),
                np.asarray([m.ref_vdd for m in models]),
                np.asarray([m.k_temp for m in models]),
                np.asarray([m.k_vdd for m in models]),
            ))
        else:
            groups.append(_GenericGroup(idx, models[0]))
    return groups


class _ForwardTables:
    """Flat per-record arrays of the forward traversal structure."""

    __slots__ = (
        "src", "dst", "in_pol", "out_pol", "gate", "levels",
        "delay_groups", "slew_groups", "missing_groups", "level_order",
        "delay_models", "slew_models",
    )

    def __init__(self):
        self.src: np.ndarray = None
        self.dst: np.ndarray = None
        self.in_pol: np.ndarray = None
        self.out_pol: np.ndarray = None
        self.gate: np.ndarray = None
        #: level -> fused evaluation groups (see :func:`_build_groups`).
        self.delay_groups: Dict[int, List] = {}
        self.slew_groups: Dict[int, List] = {}
        #: level -> record index array of unresolvable records, plus the
        #: lookup args needed to re-raise the scalar error lazily.
        self.missing_groups: Dict[int, np.ndarray] = {}
        self.level_order: List[int] = []
        #: Per-record resolved models (None = unresolvable record),
        #: retained so an in-place gate patch can rebuild one level's
        #: fused groups without recompiling the whole graph.
        self.delay_models: List[Optional["DelayModel"]] = []
        self.slew_models: List[Optional["DelayModel"]] = []


class TimingArrays:
    """Level-batched numpy sweeps over one calculator's timing graph.

    Compilation is lazy and piecewise: the forward tables are built on
    the first forward pass, the bound-slew groups on the first ceiling
    round, the backward tables on the first required-bound pass -- a
    GBA-only run never pays for the backward compile and vice versa.
    """

    def __init__(self, calc: "DelayCalculator"):
        self.calc = calc
        self.ec = calc.ec
        self.tg = calc.ec.tgraph
        #: Equivalent fanout per gate index, shared by every sweep.
        self.fo = np.asarray(calc.fo, dtype=float)
        self._forward: Optional[_ForwardTables] = None
        #: Lookup args per record (only consulted to re-raise lazily).
        self._record_lookups: List[Tuple] = []
        self._slew_groups: Optional[List[Tuple["DelayModel", np.ndarray]]] = None
        self._backward: Optional[Tuple] = None

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def _resolve_record(self, gate, pin: str, vector_id: str,
                        input_rising: bool, output_rising: bool):
        """Resolve one traversal's arc through the calculator's policy
        and memo, without bumping the per-traversal counters (this is
        compile time, not evaluation time)."""
        calc = self.calc
        lookup_id = BLIND if calc.vector_blind else vector_id
        key = (gate.cell.name, pin, lookup_id, input_rising, output_rising)
        cache = calc._arc_cache
        arc = cache.get(key) if cache is not None else None
        if arc is None:
            arc = calc._lookup_arc(*key)
            if cache is not None:
                cache[key] = arc
        return arc

    def _compile_forward(self) -> _ForwardTables:
        """One record per (fanin arc, sensitization option, input
        polarity), in the scalar pass's iteration order, grouped by
        destination level and model."""
        if self._forward is not None:
            return self._forward
        from repro.core.delaycalc import MissingArcsError

        calc = self.calc
        src: List[int] = []
        dst: List[int] = []
        in_pols: List[int] = []
        out_pols: List[int] = []
        gates: List[int] = []
        levels: List[int] = []
        lookups: List[Tuple] = []
        #: Per-record resolved models; None marks an unresolvable record.
        delay_models: List[Optional["DelayModel"]] = []
        slew_models: List[Optional["DelayModel"]] = []

        for gate in self.ec.gates:
            out_net = gate.output_net
            level = self.tg.levels[out_net]
            for arc in self.tg.fanin[out_net]:
                for option in gate.options[arc.pin]:
                    vector = option.vector
                    for in_pol in (0, 1):
                        input_rising = in_pol == 0
                        output_rising = input_rising ^ vector.inverting
                        src.append(arc.src_net)
                        dst.append(out_net)
                        in_pols.append(in_pol)
                        out_pols.append(0 if output_rising else 1)
                        gates.append(gate.index)
                        levels.append(level)
                        lookups.append((gate, arc.pin, vector.vector_id,
                                        input_rising, output_rising))
                        try:
                            resolved = self._resolve_record(
                                gate, arc.pin, vector.vector_id,
                                input_rising, output_rising,
                            )
                        except MissingArcsError:
                            # The scalar pass raises only when a
                            # *reachable* polarity traverses the record;
                            # mark it and re-raise lazily in the sweep.
                            delay_models.append(None)
                            slew_models.append(None)
                            continue
                        delay_models.append(resolved.delay_model)
                        slew_models.append(resolved.slew_model)

        fwd = _ForwardTables()
        fwd.src = np.asarray(src, dtype=np.intp)
        fwd.dst = np.asarray(dst, dtype=np.intp)
        fwd.in_pol = np.asarray(in_pols, dtype=np.intp)
        fwd.out_pol = np.asarray(out_pols, dtype=np.intp)
        fwd.gate = np.asarray(gates, dtype=np.intp)
        fwd.levels = np.asarray(levels, dtype=np.intp)
        fwd.delay_models = delay_models
        fwd.slew_models = slew_models
        self._record_lookups = lookups

        by_level: Dict[int, List[int]] = {}
        for rec, level in enumerate(levels):
            by_level.setdefault(level, []).append(rec)
        fwd.level_order = sorted(by_level)
        for level, recs in by_level.items():
            missing = [r for r in recs if delay_models[r] is None]
            if missing:
                fwd.missing_groups[level] = np.asarray(missing, dtype=np.intp)
            fwd.delay_groups[level] = _build_groups(
                [(r, delay_models[r]) for r in recs
                 if delay_models[r] is not None]
            )
            fwd.slew_groups[level] = _build_groups(
                [(r, slew_models[r]) for r in recs
                 if slew_models[r] is not None]
            )
        self._forward = fwd
        return fwd

    def _points(self, fo: np.ndarray, t_in: np.ndarray) -> np.ndarray:
        pts = np.empty((fo.shape[0], 4))
        pts[:, 0] = fo
        pts[:, 1] = t_in
        pts[:, 2] = self.calc.temp
        pts[:, 3] = self.calc.vdd
        return pts

    # ------------------------------------------------------------------
    # forward pass (GBA semantics)
    # ------------------------------------------------------------------
    def forward_arrivals(self) -> ForwardTiming:
        """Level-batched worst arrival/slew pass, bitwise-equal to the
        scalar :meth:`TimingGraph.forward_arrivals
        <repro.core.tgraph.TimingGraph.forward_arrivals>`.

        Correctness of the batching: a net at level ``L`` only receives
        contributions from records whose destination is that net, all
        of which sit at level ``L``, and every record's source is at a
        strictly lower level -- so after the level-``L`` scatter both
        the arrival and slew slots of every level-``L`` net are final
        before any higher level reads them.  The scatter itself is
        ``np.maximum.at`` (unbuffered), and max over an identical
        multiset of doubles is exact, so record order inside a level
        cannot change a single bit.
        """
        fwd = self._compile_forward()
        calc = self.calc
        n_nets = self.ec.num_nets
        arr = np.full((n_nets, 2), -np.inf)
        slw = np.full((n_nets, 2), -np.inf)
        reach = np.zeros((n_nets, 2), dtype=bool)
        for net in self.ec.input_ids:
            arr[net] = 0.0
            slw[net] = calc.input_slew
            reach[net] = True
        arr_flat = arr.reshape(-1)
        slw_flat = slw.reshape(-1)
        reach_flat = reach.reshape(-1)
        src, dst = fwd.src, fwd.dst
        in_pol, out_pol = fwd.in_pol, fwd.out_pol

        for level in fwd.level_order:
            if level == 0:
                continue
            missing = fwd.missing_groups.get(level)
            if missing is not None:
                active = missing[reach[src[missing], in_pol[missing]]]
                if active.size:
                    # Replay the scalar traversal of the first reachable
                    # missing record: raises the identical
                    # MissingArcsError (message and all).
                    rec = int(active[0])
                    gate, pin, vector_id, input_rising, output_rising = (
                        self._record_lookups[rec]
                    )
                    calc.arc_timing(gate, pin, vector_id, input_rising,
                                    output_rising,
                                    float(slw[src[rec], in_pol[rec]]))
            for group in fwd.delay_groups[level]:
                idx = group.idx
                mask = reach[src[idx], in_pol[idx]]
                if not mask.all():
                    if not mask.any():
                        continue
                    act, sel = idx[mask], mask
                else:
                    act, sel = idx, slice(None)
                s, p = src[act], in_pol[act]
                delay = group.eval(
                    self._points(self.fo[fwd.gate[act]], slw[s, p]), sel
                )
                flat = dst[act] * 2 + out_pol[act]
                np.maximum.at(arr_flat, flat, arr[s, p] + delay)
                reach_flat[flat] = True
            for group in fwd.slew_groups[level]:
                idx = group.idx
                mask = reach[src[idx], in_pol[idx]]
                if not mask.all():
                    if not mask.any():
                        continue
                    act, sel = idx[mask], mask
                else:
                    act, sel = idx, slice(None)
                s, p = src[act], in_pol[act]
                slew = group.eval(
                    self._points(self.fo[fwd.gate[act]], slw[s, p]), sel
                )
                np.maximum.at(slw_flat, dst[act] * 2 + out_pol[act], slew)

        arrivals = [
            [float(arr[n, p]) if reach[n, p] else None for p in (0, 1)]
            for n in range(n_nets)
        ]
        slews = [
            [float(slw[n, p]) if reach[n, p] else None for p in (0, 1)]
            for n in range(n_nets)
        ]
        return ForwardTiming(arrivals=arrivals, slews=slews)

    # ------------------------------------------------------------------
    # achievable-slew ceiling
    # ------------------------------------------------------------------
    def _compile_slew_sweep(self) -> List[Tuple["DelayModel", np.ndarray]]:
        """(slew model, fanout vector) groups covering the same
        (gate, arc) multiset the scalar ceiling rounds iterate."""
        if self._slew_groups is not None:
            return self._slew_groups
        calc = self.calc
        fos: Dict[int, List[float]] = {}
        model_of: Dict[int, "DelayModel"] = {}
        for gate in self.ec.gates:
            fo = calc.fo[gate.index]
            for arc in calc.gate_arcs(gate):
                token = id(arc.slew_model)
                model_of[token] = arc.slew_model
                fos.setdefault(token, []).append(fo)
        self._slew_groups = [
            (model_of[token], np.asarray(values, dtype=float))
            for token, values in fos.items()
        ]
        return self._slew_groups

    def max_slew(self, samples: Sequence[float]) -> float:
        """Worst output slew any gate of the circuit can emit over one
        sample grid -- one fixed-point round of
        :meth:`DelayCalculator.bound_slews`, batched per model."""
        groups = self._compile_slew_sweep()
        grid = np.asarray(samples, dtype=float)
        worst = 0.0
        for model, fo_values in groups:
            pts = self._points(
                np.repeat(fo_values, grid.size),
                np.tile(grid, fo_values.size),
            )
            peak = float(np.max(model.evaluate_many(pts)))
            if peak > worst:
                worst = peak
        return worst

    # ------------------------------------------------------------------
    # in-place record patching (repro.core.incremental)
    # ------------------------------------------------------------------
    def patch_gate(self, gate_index: int) -> bool:
        """Re-resolve one gate's forward records in place after its
        cell was swapped, instead of recompiling the whole graph.

        The record layout per gate is ``(fanin arc x sensitization
        option x input polarity)`` in compile order.  A pin-compatible
        swap keeps the fanin arcs (and hence ``src``/``dst``/``levels``)
        fixed, but the new cell's vectors may change ``out_pol``
        (inverting flips), the resolved models, and -- when the vector
        *count* per pin differs (e.g. NAND2 -> XOR2) -- the record count
        itself.  In that last case patching is impossible; the compiled
        tables are dropped and False is returned so the caller can
        count a full SoA recompile.  Otherwise the gate's records are
        regenerated exactly as :meth:`_compile_forward` would, and only
        the fused evaluation groups of the gate's own level are
        rebuilt.  No-op (True) when the forward tables were never
        compiled.
        """
        if self._forward is None:
            return True
        from repro.core.delaycalc import MissingArcsError

        fwd = self._forward
        gate = self.ec.gates[gate_index]
        recs = np.nonzero(fwd.gate == gate_index)[0]
        out_net = gate.output_net
        regenerated: List[Tuple] = []
        for arc in self.tg.fanin[out_net]:
            if arc.gate_index != gate_index:
                continue
            for option in gate.options[arc.pin]:
                vector = option.vector
                for in_pol in (0, 1):
                    input_rising = in_pol == 0
                    output_rising = input_rising ^ vector.inverting
                    regenerated.append((
                        arc.src_net, in_pol, 0 if output_rising else 1,
                        (gate, arc.pin, vector.vector_id,
                         input_rising, output_rising),
                    ))
        if len(regenerated) != recs.size:
            self._forward = None
            self._record_lookups = []
            return False
        for rec, (src_net, in_pol, out_pol, lookup) in zip(
            recs, regenerated
        ):
            rec = int(rec)
            fwd.src[rec] = src_net
            fwd.in_pol[rec] = in_pol
            fwd.out_pol[rec] = out_pol
            self._record_lookups[rec] = lookup
            try:
                resolved = self._resolve_record(*lookup)
            except MissingArcsError:
                fwd.delay_models[rec] = None
                fwd.slew_models[rec] = None
                continue
            fwd.delay_models[rec] = resolved.delay_model
            fwd.slew_models[rec] = resolved.slew_model
        level = self.tg.levels[out_net]
        level_recs = np.nonzero(fwd.levels == level)[0]
        missing = [int(r) for r in level_recs if fwd.delay_models[r] is None]
        if missing:
            fwd.missing_groups[level] = np.asarray(missing, dtype=np.intp)
        else:
            fwd.missing_groups.pop(level, None)
        fwd.delay_groups[level] = _build_groups(
            [(int(r), fwd.delay_models[r]) for r in level_recs
             if fwd.delay_models[r] is not None]
        )
        fwd.slew_groups[level] = _build_groups(
            [(int(r), fwd.slew_models[r]) for r in level_recs
             if fwd.slew_models[r] is not None]
        )
        return True

    def patch_fo(self, gate_indices: Sequence[int]) -> None:
        """Mirror the calculator's refreshed equivalent fanouts into
        the shared per-gate vector (:meth:`DelayCalculator.refresh_fanout`
        calls this after an edit)."""
        for index in gate_indices:
            self.fo[index] = self.calc.fo[index]

    def invalidate_slew_groups(self) -> None:
        """Drop the ceiling-sweep model groups; an edit changed some
        gate's (model, fanout) pairs, and the groups are cheap to
        rebuild lazily relative to the fixed-point rounds."""
        self._slew_groups = None

    def slew_peaks(
        self, samples: Sequence[float],
        gate_indices: Optional[Sequence[int]] = None,
    ) -> List[float]:
        """Worst output slew *per gate* over one sample grid, batched
        per model.  Each value is the max over the gate's resolvable
        arcs of ``evaluate_many`` on the grid -- bitwise the same
        floats the global :meth:`max_slew` round maximizes over, so a
        per-gate peak table maintained from these reproduces the scalar
        ceiling fixed point exactly while re-evaluating only dirty
        gates per edit."""
        calc = self.calc
        gates = (self.ec.gates if gate_indices is None
                 else [self.ec.gates[i] for i in gate_indices])
        grid = np.asarray(samples, dtype=float)
        peaks = np.zeros(len(gates))
        fos: Dict[int, List[Tuple[int, float]]] = {}
        model_of: Dict[int, "DelayModel"] = {}
        for slot, gate in enumerate(gates):
            fo = calc.fo[gate.index]
            for arc in calc.gate_arcs(gate):
                token = id(arc.slew_model)
                model_of[token] = arc.slew_model
                fos.setdefault(token, []).append((slot, fo))
        for token, pairs in fos.items():
            sidx = np.asarray([s for s, _ in pairs], dtype=np.intp)
            fo_values = np.asarray([f for _, f in pairs], dtype=float)
            pts = self._points(
                np.repeat(fo_values, grid.size),
                np.tile(grid, fo_values.size),
            )
            vals = model_of[token].evaluate_many(pts)
            p = vals.reshape(len(pairs), grid.size).max(axis=1)
            np.maximum.at(peaks, sidx, p)
        return [float(v) for v in peaks]

    # ------------------------------------------------------------------
    # backward required-time bound
    # ------------------------------------------------------------------
    def prefill_worst_arcs(self) -> None:
        """Fill the calculator's (gate, pin) worst-arc-delay cache with
        one batched sweep per delay model.

        Per entry this computes exactly what
        :meth:`DelayCalculator.worst_arc_delay` computes lazily -- the
        maximum of each pin arc's fitted delay over the bound-slew
        grid, floored at 0.0 -- so the cached floats are bitwise-equal
        and later scalar reads (the search hot loop, the suffix bound)
        see identical values.  Entries already cached (e.g. seeded from
        a parent's :class:`CompiledTables`) are left untouched.
        """
        calc = self.calc
        slews = np.asarray(calc.bound_slews(), dtype=float)
        entries: List[Tuple[int, str]] = []
        items: Dict[int, List[Tuple[int, float]]] = {}
        model_of: Dict[int, "DelayModel"] = {}
        for gate in self.ec.gates:
            fo = calc.fo[gate.index]
            for pin in gate.options:
                key = (gate.index, pin)
                if key in calc._worst_arc_cache:
                    continue
                entry = len(entries)
                entries.append(key)
                for arc in calc.pin_arcs(gate, pin):
                    token = id(arc.delay_model)
                    model_of[token] = arc.delay_model
                    items.setdefault(token, []).append((entry, fo))
        if not entries:
            return
        worst = np.zeros(len(entries))
        for token, pairs in items.items():
            eidx = np.asarray([e for e, _ in pairs], dtype=np.intp)
            fo_values = np.asarray([f for _, f in pairs], dtype=float)
            pts = self._points(
                np.repeat(fo_values, slews.size),
                np.tile(slews, fo_values.size),
            )
            vals = model_of[token].evaluate_many(pts)
            peaks = vals.reshape(len(pairs), slews.size).max(axis=1)
            np.maximum.at(worst, eidx, peaks)
        for key, value in zip(entries, worst):
            calc._worst_arc_cache[key] = float(value)

    def _compile_backward(self):
        """Arc-aligned arrays for the reverse scatter-max, grouped by
        destination-net level (descending)."""
        if self._backward is not None:
            return self._backward
        arcs = self.tg.arcs
        src = np.asarray([a.src_net for a in arcs], dtype=np.intp)
        dst = np.asarray([a.dst_net for a in arcs], dtype=np.intp)
        keys = [(a.gate_index, a.pin) for a in arcs]
        levels = np.asarray([self.tg.levels[a.dst_net] for a in arcs],
                            dtype=np.intp)
        order = sorted(set(levels.tolist()), reverse=True)
        groups = [(level, np.nonzero(levels == level)[0]) for level in order]
        self._backward = (src, dst, keys, groups)
        return self._backward

    def backward_required_bounds(self) -> List[float]:
        """Level-batched reverse pass, bitwise-equal to the scalar
        :meth:`TimingGraph.backward_required_bounds
        <repro.core.tgraph.TimingGraph.backward_required_bounds>`:
        ``bound[src] = max over outgoing arcs (worst_arc_delay +
        bound[dst])`` with the same worst-arc floats (prefilled above)
        and the same IEEE additions; max is exact, so batching cannot
        change a bit.  Arcs with destination level ``L`` are processed
        only after every arc *leaving* a level-``L`` net (their
        destinations sit strictly above ``L``), so each ``bound[dst]``
        read is final.
        """
        self.prefill_worst_arcs()
        src, dst, keys, groups = self._compile_backward()
        cache = self.calc._worst_arc_cache
        worst = np.asarray([cache[k] for k in keys], dtype=float) \
            if keys else np.zeros(0)
        bounds = np.zeros(self.ec.num_nets)
        for _, idx in groups:
            through = worst[idx] + bounds[dst[idx]]
            np.maximum.at(bounds, src[idx], through)
        return [float(b) for b in bounds]
