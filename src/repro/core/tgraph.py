"""Levelized timing-graph substrate shared by all three analysis engines.

The developed single-pass pathfinder, the two-step commercial baseline
and the conservative GBA mode all analyze the same object: a DAG of
nets connected by *timing arcs* (one arc per gate input pin, from the
pin's net to the gate's output net).  Before this module each engine
rebuilt its own private adjacency -- the engine its ``sinks`` table, the
baseline enumerator its own walk of that table, GBA a name-keyed dict
traversal.  :class:`TimingGraph` computes the shared representation
once per circuit:

* net levelization (primary inputs at level 0) and the net/gate
  topological order,
* first-class :class:`TimingArc` objects with per-net fanout/fanin
  indexes (the engine's ``sinks`` table is a view of these),
* a **forward worst-arrival pass** (what GBA reports),
* a **backward required-time pass** producing, per net, an admissible
  upper bound on the remaining delay from that net to any primary
  output -- maximized over the net's outgoing arcs and over the
  achievable-slew domain (:meth:`DelayCalculator.bound_slews`).

The backward bound is strictly tighter than the legacy context-free
suffix sum (per-gate worst delay maximized over *every* pin of the
gate, regardless of which pin the path enters through): each arc
contributes only the delays its own pin can exhibit.  Both bounds are
admissible, and dominance (``required <= suffix`` per net) is pinned by
property tests, so swapping the pathfinder's N-worst pruning onto the
backward bound prunes strictly more while provably returning the same
top-N set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs.tracing import span

if TYPE_CHECKING:  # avoid import cycles; tgraph is imported from netlist
    from repro.core.delaycalc import DelayCalculator
    from repro.core.engine import EngineCircuit
    from repro.netlist.circuit import Circuit


def net_levels(circuit: "Circuit") -> Dict[str, int]:
    """Level of every net: primary inputs are 0, a gate output is one
    more than its deepest input net.

    This is the single levelization implementation in the repo;
    :func:`repro.netlist.levelize.levelize` and the per-circuit
    :class:`TimingGraph` both delegate here.
    """
    levels: Dict[str, int] = {name: 0 for name in circuit.inputs}
    for inst in circuit.topological():
        level = 0
        for net_name in inst.pins.values():
            level = max(level, levels.get(net_name, 0))
        levels[inst.output_net] = level + 1
    return levels


@dataclass(frozen=True)
class TimingArc:
    """One net-to-net edge of the timing graph.

    An arc is a (gate, input pin) pair viewed as a graph edge: the
    search traverses it, GBA relaxes over it, and the backward pass
    bounds it.  Delay *models* stay in the characterized library; the
    arc object only identifies the traversal.
    """

    index: int
    gate_index: int
    pin: str
    src_net: int
    dst_net: int


@dataclass(frozen=True)
class PruneBounds:
    """Per-net upper bounds on the remaining input-to-output delay.

    ``required`` is the backward required-time bound (per-arc worst
    delays); ``suffix`` is the legacy context-free per-gate suffix sum.
    Both are admissible; ``required[net] <= suffix[net]`` everywhere.
    The pathfinder prunes on ``required`` and uses ``suffix`` to count
    how many prunes the tighter bound won (``pathfinder.bound_prunes``).
    The object is a plain pair of float tuples so the parallel driver
    can compute it once in the parent and ship it to worker shards.
    """

    required: Tuple[float, ...]
    suffix: Tuple[float, ...]


@dataclass
class ForwardTiming:
    """Worst-case arrivals/slews from one forward pass (GBA semantics).

    Indexed by net id; polarity slots are ``[rise, fall]``; ``None``
    marks an unreachable polarity.
    """

    arrivals: List[List[Optional[float]]]
    slews: List[List[Optional[float]]]


class TimingGraph:
    """Static levelized timing graph of one indexed circuit.

    Built once per :class:`~repro.core.engine.EngineCircuit` (lazily,
    via ``ec.tgraph``) and shared by every engine bound to it.
    """

    def __init__(self, ec: "EngineCircuit"):
        self.ec = ec
        n_nets = ec.num_nets

        #: All timing arcs, gate-major in topological gate order.
        self.arcs: List[TimingArc] = []
        #: net id -> outgoing arcs (the engine's fanout adjacency).
        self.fanout: List[List[TimingArc]] = [[] for _ in range(n_nets)]
        #: net id -> incoming arcs (what the forward pass relaxes over).
        self.fanin: List[List[TimingArc]] = [[] for _ in range(n_nets)]
        #: net id -> list of (gate index, pin) -- the exact ``sinks``
        #: table the search hot loop indexes (kept materialized so the
        #: substrate swap costs the hot path nothing).
        self.sinks: List[List[Tuple[int, str]]] = [[] for _ in range(n_nets)]
        for gate in ec.gates:  # already topological
            for pin, src in zip(gate.cell.inputs, gate.input_nets):
                arc = TimingArc(
                    index=len(self.arcs),
                    gate_index=gate.index,
                    pin=pin,
                    src_net=src,
                    dst_net=gate.output_net,
                )
                self.arcs.append(arc)
                self.fanout[src].append(arc)
                self.fanin[gate.output_net].append(arc)
                self.sinks[src].append((gate.index, pin))

        #: net id -> level (primary inputs at 0).
        name_levels = net_levels(ec.circuit)
        self.levels: List[int] = [
            name_levels.get(name, 0) for name in ec.net_names
        ]
        self.depth: int = max(self.levels, default=0)
        #: Net ids in non-decreasing level order (a valid topological
        #: order of the nets).
        self.topo_nets: List[int] = sorted(
            range(n_nets), key=self.levels.__getitem__
        )

    # ------------------------------------------------------------------
    def forward_arrivals(self, calc: "DelayCalculator") -> ForwardTiming:
        """One levelized worst-arrival pass (GBA semantics).

        Every arc contributes its structurally worst sensitization
        vector per polarity -- no joint sensitizability check, which is
        exactly the pessimism the true-path engines remove.  Arrivals
        and slews are maximized *independently* per output polarity:
        the propagated slew must be the worst any contributing arc can
        emit, not the slew of whichever arc happened to arrive latest
        (a latest-arrival slew can under-estimate downstream delays and
        break the GBA >= true-path soundness invariant; see
        ``tests/test_gba_slew_soundness.py``).  A missing library arc
        raises :class:`~repro.core.delaycalc.MissingArcsError` under
        the ``error`` policy the moment a reachable polarity traverses
        it, like every other engine.

        Delegates to the structure-of-arrays sweep
        (:meth:`TimingArrays.forward_arrivals
        <repro.core.tarrays.TimingArrays.forward_arrivals>`) when the
        calculator has vectorization enabled; results are byte
        identical either way.  Wall-clock is published to the
        ``tgraph.forward_pass_ms`` histogram.
        """
        started = time.perf_counter()
        with span("tgraph.forward_pass"):
            if getattr(calc, "vectorize", False):
                timing = calc.tarrays.forward_arrivals()
            else:
                timing = self._forward_arrivals_scalar(calc)
        obs_metrics.REGISTRY.histogram("tgraph.forward_pass_ms").observe(
            (time.perf_counter() - started) * 1e3
        )
        return timing

    def _forward_arrivals_scalar(self, calc: "DelayCalculator") -> ForwardTiming:
        """Reference arc-at-a-time forward pass (``--no-vectorize``)."""
        ec = self.ec
        n_nets = ec.num_nets
        arrivals: List[List[Optional[float]]] = [[None, None] for _ in range(n_nets)]
        slews: List[List[Optional[float]]] = [[None, None] for _ in range(n_nets)]
        for net in ec.input_ids:
            arrivals[net] = [0.0, 0.0]
            slews[net] = [calc.input_slew, calc.input_slew]

        for gate in ec.gates:  # topological
            out_arr = arrivals[gate.output_net]
            out_slew = slews[gate.output_net]
            for arc in self.fanin[gate.output_net]:
                in_arr = arrivals[arc.src_net]
                in_slew = slews[arc.src_net]
                for option in gate.options[arc.pin]:
                    vector = option.vector
                    for in_pol in (0, 1):
                        if in_arr[in_pol] is None:
                            continue
                        input_rising = in_pol == 0
                        output_rising = input_rising ^ vector.inverting
                        out_pol = 0 if output_rising else 1
                        delay, slew = calc.arc_timing(
                            gate, arc.pin, vector.vector_id,
                            input_rising, output_rising,
                            in_slew[in_pol],
                        )
                        arrival = in_arr[in_pol] + delay
                        if out_arr[out_pol] is None or arrival > out_arr[out_pol]:
                            out_arr[out_pol] = arrival
                        if out_slew[out_pol] is None or slew > out_slew[out_pol]:
                            out_slew[out_pol] = slew
        return ForwardTiming(arrivals=arrivals, slews=slews)

    # ------------------------------------------------------------------
    # per-net recompute primitives (incremental dirty-cone re-analysis)
    # ------------------------------------------------------------------
    def forward_update_net(
        self,
        calc: "DelayCalculator",
        net: int,
        timing: ForwardTiming,
    ) -> bool:
        """Recompute one driven net's worst arrival/slew slots in place.

        Replays exactly the per-gate inner loop of
        :meth:`_forward_arrivals_scalar` for this net, reading the
        (already final) arrivals/slews of the net's fanin sources from
        ``timing`` and overwriting the net's own slots.  Because float
        ``max`` over a fixed multiset is order-independent and the
        per-record arithmetic is the same IEEE doubles the full pass
        performs, the updated slots are bitwise-equal to a from-scratch
        pass -- this is the primitive
        :class:`~repro.core.incremental.IncrementalSTA` sweeps over the
        dirty cone.  Returns True when either polarity slot changed
        (including reachability flips, which a function-changing cell
        swap can cause).
        """
        arrivals, slews = timing.arrivals, timing.slews
        out_arr: List[Optional[float]] = [None, None]
        out_slew: List[Optional[float]] = [None, None]
        gates = self.ec.gates
        for arc in self.fanin[net]:
            gate = gates[arc.gate_index]
            in_arr = arrivals[arc.src_net]
            in_slew = slews[arc.src_net]
            for option in gate.options[arc.pin]:
                vector = option.vector
                for in_pol in (0, 1):
                    if in_arr[in_pol] is None:
                        continue
                    input_rising = in_pol == 0
                    output_rising = input_rising ^ vector.inverting
                    out_pol = 0 if output_rising else 1
                    delay, slew = calc.arc_timing(
                        gate, arc.pin, vector.vector_id,
                        input_rising, output_rising,
                        in_slew[in_pol],
                    )
                    arrival = in_arr[in_pol] + delay
                    if out_arr[out_pol] is None or arrival > out_arr[out_pol]:
                        out_arr[out_pol] = arrival
                    if out_slew[out_pol] is None or slew > out_slew[out_pol]:
                        out_slew[out_pol] = slew
        changed = out_arr != arrivals[net] or out_slew != slews[net]
        arrivals[net] = out_arr
        slews[net] = out_slew
        return changed

    def required_through_net(
        self, calc: "DelayCalculator", net: int, required: Sequence[float]
    ) -> float:
        """One net's backward required-time bound from its (final)
        downstream values: ``max over outgoing arcs (worst_arc_delay +
        required[dst])``, floored at 0.0 -- the per-net fixed point the
        full reverse pass converges to, so recomputing only nets whose
        inputs changed reproduces the full pass bitwise."""
        best = 0.0
        gates = self.ec.gates
        for arc in self.fanout[net]:
            through = (
                calc.worst_arc_delay(gates[arc.gate_index], arc.pin)
                + required[arc.dst_net]
            )
            if through > best:
                best = through
        return best

    def suffix_through_net(
        self, calc: "DelayCalculator", net: int, suffix: Sequence[float]
    ) -> float:
        """One net's legacy context-free suffix bound: ``max over sink
        gates (worst_gate_delay + suffix[gate output])``.  A gate fed
        twice by the same net contributes once per arc, which cannot
        change the maximum -- bitwise-equal to the full reverse pass of
        :meth:`DelayCalculator.remaining_bounds`."""
        best = 0.0
        gates = self.ec.gates
        for arc in self.fanout[net]:
            gate = gates[arc.gate_index]
            through = calc.worst_gate_delay(gate) + suffix[gate.output_net]
            if through > best:
                best = through
        return best

    # ------------------------------------------------------------------
    def backward_required_bounds(self, calc: "DelayCalculator") -> List[float]:
        """Per-net admissible upper bound on the remaining delay from
        that net to any primary output.

        One reverse-topological pass maximizing, per net, over its
        outgoing arcs: ``bound[src] = max over arcs (worst_arc_delay +
        bound[dst])``, where ``worst_arc_delay`` is the arc's fitted
        delay maximized over the achievable-slew domain
        (:meth:`DelayCalculator.worst_arc_delay`).  Admissible because
        every traversal of an arc exhibits at most its worst arc delay
        at any achievable slew, and dominated by the legacy per-gate
        suffix sum because an arc's worst delay never exceeds its
        gate's worst delay over all pins.

        Delegates to the structure-of-arrays sweep
        (:meth:`TimingArrays.backward_required_bounds
        <repro.core.tarrays.TimingArrays.backward_required_bounds>`)
        when the calculator has vectorization enabled; results are
        byte identical either way.  Wall-clock is published to the
        ``tgraph.backward_pass_ms`` histogram.
        """
        started = time.perf_counter()
        with span("tgraph.backward_pass"):
            if getattr(calc, "vectorize", False):
                bounds = calc.tarrays.backward_required_bounds()
            else:
                bounds = [0.0] * self.ec.num_nets
                for gate in reversed(self.ec.gates):
                    downstream = bounds[gate.output_net]
                    for arc in self.fanin[gate.output_net]:
                        through = calc.worst_arc_delay(gate, arc.pin) + downstream
                        if through > bounds[arc.src_net]:
                            bounds[arc.src_net] = through
        obs_metrics.REGISTRY.histogram("tgraph.backward_pass_ms").observe(
            (time.perf_counter() - started) * 1e3
        )
        return bounds
