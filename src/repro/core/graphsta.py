"""Graph-based timing analysis (GBA) -- the conservative baseline mode.

Classic block-based STA propagates a single worst-case (arrival, slew)
pair per net in one topological pass: every gate contributes its worst
arc (over sensitization vectors) regardless of whether any input vector
can actually exercise it.  It is fast -- O(gates) -- and safe, but
pessimistic: the reported arrival can exceed the true worst path delay
whenever the structurally-worst arcs cannot be sensitized together.

This module provides GBA as a third analysis mode next to the paper's
path-based tool, plus the pessimism measurement: ``gba_pessimism``
compares the GBA endpoint arrivals against the true-path results, which
quantifies exactly what the paper's single-pass tool buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.charlib.store import CharacterizedLibrary
from repro.core.delaycalc import DEFAULT_INPUT_SLEW, DelayCalculator
from repro.core.engine import EngineCircuit
from repro.core.path import TimedPath
from repro.netlist.circuit import Circuit

#: Per-net timing datum: (arrival, slew), tracked per output polarity.
_RISE = 0
_FALL = 1


@dataclass
class GbaResult:
    """Worst-case arrivals from one topological pass."""

    #: net name -> (rise arrival, fall arrival); None = unreachable.
    arrivals: Dict[str, Tuple[Optional[float], Optional[float]]]
    #: net name -> (rise slew, fall slew)
    slews: Dict[str, Tuple[Optional[float], Optional[float]]]

    def worst_arrival(self, net: str) -> float:
        rise, fall = self.arrivals[net]
        candidates = [a for a in (rise, fall) if a is not None]
        if not candidates:
            raise ValueError(f"net {net} has no arrival")
        return max(candidates)


class GraphSTA:
    """One-pass block-based analysis over the timing graph."""

    def __init__(
        self,
        circuit: Circuit,
        charlib: CharacterizedLibrary,
        temp: float = 25.0,
        vdd: Optional[float] = None,
        input_slew: float = DEFAULT_INPUT_SLEW,
    ):
        circuit.check()
        self.circuit = circuit
        self.ec = EngineCircuit(circuit)
        self.calc = DelayCalculator(
            self.ec, charlib, temp=temp, vdd=vdd, input_slew=input_slew,
            vector_blind=charlib.metadata.get("vector_mode") == "default",
        )

    def run(self) -> GbaResult:
        arrivals: Dict[str, List[Optional[float]]] = {}
        slews: Dict[str, List[Optional[float]]] = {}
        for name in self.circuit.inputs:
            arrivals[name] = [0.0, 0.0]
            slews[name] = [self.calc.input_slew, self.calc.input_slew]

        for gate in self.ec.gates:  # already topological
            inst = gate.inst
            out_arr: List[Optional[float]] = [None, None]
            out_slew: List[Optional[float]] = [None, None]
            for pin in gate.cell.inputs:
                in_net = inst.pins[pin]
                in_arr = arrivals.get(in_net, [None, None])
                in_slew = slews.get(in_net, [None, None])
                for option in gate.options[pin]:
                    vector = option.vector
                    for in_pol in (_RISE, _FALL):
                        if in_arr[in_pol] is None:
                            continue
                        input_rising = in_pol == _RISE
                        output_rising = input_rising ^ vector.inverting
                        out_pol = _RISE if output_rising else _FALL
                        try:
                            delay, slew = self.calc.arc_timing(
                                gate, pin, vector.vector_id, input_rising,
                                output_rising, in_slew[in_pol],
                            )
                        except KeyError:
                            continue
                        arrival = in_arr[in_pol] + delay
                        if out_arr[out_pol] is None or arrival > out_arr[out_pol]:
                            out_arr[out_pol] = arrival
                            out_slew[out_pol] = slew
            arrivals[inst.output_net] = out_arr
            slews[inst.output_net] = out_slew

        return GbaResult(
            arrivals={k: (v[0], v[1]) for k, v in arrivals.items()},
            slews={k: (v[0], v[1]) for k, v in slews.items()},
        )


def gba_pessimism(
    gba: GbaResult,
    true_paths: Sequence[TimedPath],
) -> Dict[str, Dict[str, float]]:
    """Per-endpoint comparison of GBA arrivals vs true-path arrivals.

    Returns, per endpoint with both numbers available: the GBA arrival,
    the true worst arrival, and the pessimism ratio (GBA / true - 1).
    GBA must never be optimistic (ratio >= 0 up to model noise); the
    positive ratios are what path-based analysis recovers.
    """
    true_worst: Dict[str, float] = {}
    for path in true_paths:
        endpoint = path.nets[-1]
        arrival = path.worst_arrival
        if arrival > true_worst.get(endpoint, 0.0):
            true_worst[endpoint] = arrival
    out: Dict[str, Dict[str, float]] = {}
    for endpoint, truth in true_worst.items():
        try:
            bound = gba.worst_arrival(endpoint)
        except (KeyError, ValueError):
            continue
        out[endpoint] = {
            "gba": bound,
            "true": truth,
            "pessimism": bound / truth - 1.0,
        }
    return out
