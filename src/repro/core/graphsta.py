"""Graph-based timing analysis (GBA) -- the conservative baseline mode.

Classic block-based STA propagates a single worst-case (arrival, slew)
pair per net in one topological pass: every gate contributes its worst
arc (over sensitization vectors) regardless of whether any input vector
can actually exercise it.  It is fast -- O(gates) -- and safe, but
pessimistic: the reported arrival can exceed the true worst path delay
whenever the structurally-worst arcs cannot be sensitized together.

This module provides GBA as a third analysis mode next to the paper's
path-based tool, plus the pessimism measurement: ``gba_pessimism``
compares the GBA endpoint arrivals against the true-path results, which
quantifies exactly what the paper's single-pass tool buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.charlib.store import CharacterizedLibrary
from repro.core.delaycalc import DEFAULT_INPUT_SLEW, DelayCalculator
from repro.core.engine import EngineCircuit
from repro.core.path import TimedPath
from repro.netlist.circuit import Circuit


@dataclass
class GbaResult:
    """Worst-case arrivals from one topological pass."""

    #: net name -> (rise arrival, fall arrival); None = unreachable.
    arrivals: Dict[str, Tuple[Optional[float], Optional[float]]]
    #: net name -> (rise slew, fall slew)
    slews: Dict[str, Tuple[Optional[float], Optional[float]]]

    def worst_arrival(self, net: str) -> float:
        rise, fall = self.arrivals[net]
        candidates = [a for a in (rise, fall) if a is not None]
        if not candidates:
            raise ValueError(f"net {net} has no arrival")
        return max(candidates)


class GraphSTA:
    """One-pass block-based analysis: a thin consumer of the timing
    graph's forward worst-arrival pass
    (:meth:`repro.core.tgraph.TimingGraph.forward_arrivals`)."""

    def __init__(
        self,
        circuit: Circuit,
        charlib: CharacterizedLibrary,
        temp: float = 25.0,
        vdd: Optional[float] = None,
        input_slew: float = DEFAULT_INPUT_SLEW,
        missing_arc_policy: str = "error",
        vectorize: bool = True,
    ):
        circuit.check()
        self.circuit = circuit
        self.ec = EngineCircuit(circuit)
        self.calc = DelayCalculator(
            self.ec, charlib, temp=temp, vdd=vdd, input_slew=input_slew,
            vector_blind=charlib.metadata.get("vector_mode") == "default",
            missing_arc_policy=missing_arc_policy,
            vectorize=vectorize,
        )

    def run(self) -> GbaResult:
        forward = self.ec.tgraph.forward_arrivals(self.calc)
        names = self.ec.net_names
        # Report primary inputs and driven nets, like the historical
        # name-keyed traversal did (every net is one or the other in a
        # checked circuit).
        reported = [
            net for net in range(self.ec.num_nets)
            if self.ec.is_input[net] or self.ec.driver[net] >= 0
        ]
        return GbaResult(
            arrivals={
                names[net]: tuple(forward.arrivals[net]) for net in reported
            },
            slews={names[net]: tuple(forward.slews[net]) for net in reported},
        )


def gba_pessimism(
    gba: GbaResult,
    true_paths: Sequence[TimedPath],
) -> Dict[str, Dict[str, float]]:
    """Per-endpoint comparison of GBA arrivals vs true-path arrivals.

    Returns, per endpoint with both numbers available: the GBA arrival,
    the true worst arrival, and the pessimism ratio (GBA / true - 1).
    GBA must never be optimistic (ratio >= 0 up to model noise); the
    positive ratios are what path-based analysis recovers.
    """
    true_worst: Dict[str, float] = {}
    for path in true_paths:
        endpoint = path.nets[-1]
        arrival = path.worst_arrival
        if arrival > true_worst.get(endpoint, 0.0):
            true_worst[endpoint] = arrival
    out: Dict[str, Dict[str, float]] = {}
    for endpoint, truth in true_worst.items():
        try:
            bound = gba.worst_arrival(endpoint)
        except (KeyError, ValueError):
            continue
        out[endpoint] = {
            "gba": bound,
            "true": truth,
            "pessimism": bound / truth - 1.0,
        }
    return out
