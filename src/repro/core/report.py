"""Timing reports: slack analysis and machine-readable path dumps.

Beyond the paper's path lists, downstream users need the usual STA
products: slack against a required time, per-endpoint worst arrivals,
and serializable path records.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.path import PathStep, PolarityTiming, TimedPath


def path_to_dict(path: TimedPath) -> Dict:
    """JSON-friendly representation of a timed path."""

    def polarity(p: Optional[PolarityTiming]) -> Optional[Dict]:
        if p is None:
            return None
        return {
            "input_rising": p.input_rising,
            "output_rising": p.output_rising,
            "arrival": p.arrival,
            "slew": p.slew,
            "gate_delays": list(p.gate_delays),
            "gate_slews": list(p.gate_slews),
            "input_vector": {
                k: v for k, v in p.input_vector.items()
            },
        }

    return {
        "circuit": path.circuit_name,
        "nets": list(path.nets),
        "steps": [
            {
                "gate": s.gate_name,
                "cell": s.cell_name,
                "pin": s.pin,
                "vector_id": s.vector_id,
                "case": s.case,
                "fo": s.fo,
            }
            for s in path.steps
        ],
        "multi_vector": path.multi_vector,
        "rise": polarity(path.rise),
        "fall": polarity(path.fall),
    }


def paths_to_json(paths: Iterable[TimedPath], indent: Optional[int] = None) -> str:
    return json.dumps([path_to_dict(p) for p in paths], indent=indent)


def path_from_dict(data: Dict) -> TimedPath:
    """Inverse of :func:`path_to_dict` -- exact float round-trip, so a
    checkpointed path list resumes bit-identical to the original run."""

    def polarity(p: Optional[Dict]) -> Optional[PolarityTiming]:
        if p is None:
            return None
        return PolarityTiming(
            input_rising=p["input_rising"],
            output_rising=p["output_rising"],
            arrival=p["arrival"],
            slew=p["slew"],
            gate_delays=list(p["gate_delays"]),
            gate_slews=list(p["gate_slews"]),
            input_vector=dict(p["input_vector"]),
        )

    return TimedPath(
        circuit_name=data["circuit"],
        nets=tuple(data["nets"]),
        steps=tuple(
            PathStep(
                gate_name=s["gate"],
                cell_name=s["cell"],
                pin=s["pin"],
                vector_id=s["vector_id"],
                case=s["case"],
                fo=s["fo"],
            )
            for s in data["steps"]
        ),
        rise=polarity(data.get("rise")),
        fall=polarity(data.get("fall")),
        multi_vector=data.get("multi_vector", False),
    )


def paths_from_json(text: str) -> List[TimedPath]:
    return [path_from_dict(d) for d in json.loads(text)]


@dataclass
class SlackEntry:
    """Worst timing at one endpoint against a required time."""

    endpoint: str
    arrival: float
    slack: float
    path: TimedPath

    @property
    def violated(self) -> bool:
        return self.slack < 0


def slack_report(
    paths: Sequence[TimedPath],
    required_time: float,
) -> List[SlackEntry]:
    """Per-endpoint worst arrival and slack, most critical first.

    Because the path finder reports the true worst vector per path, the
    slack here is the *functional* worst case -- a two-step easy-vector
    tool would overestimate these slacks (the paper's point).
    """
    worst_per_endpoint: Dict[str, TimedPath] = {}
    for path in paths:
        endpoint = path.nets[-1]
        current = worst_per_endpoint.get(endpoint)
        if current is None or path.worst_arrival > current.worst_arrival:
            worst_per_endpoint[endpoint] = path
    entries = [
        SlackEntry(
            endpoint=endpoint,
            arrival=path.worst_arrival,
            slack=required_time - path.worst_arrival,
            path=path,
        )
        for endpoint, path in worst_per_endpoint.items()
    ]
    entries.sort(key=lambda e: e.slack)
    return entries


def hold_report(
    paths: Sequence[TimedPath],
    hold_time: float,
) -> List[SlackEntry]:
    """Min-delay (hold) analysis: per endpoint, the *fastest* true path
    and its hold slack (arrival - hold requirement).

    The true-path enumeration matters here too: a vector-blind tool can
    overestimate the fastest path's delay (reporting a harder vector's
    delay for it) and miss a hold violation.  The fastest *polarity* of
    the fastest vector variant is used.
    """
    best_per_endpoint: Dict[str, Tuple[float, TimedPath]] = {}
    for path in paths:
        arrival = min(p.arrival for p in path.polarities())
        endpoint = path.nets[-1]
        current = best_per_endpoint.get(endpoint)
        if current is None or arrival < current[0]:
            best_per_endpoint[endpoint] = (arrival, path)
    entries = [
        SlackEntry(
            endpoint=endpoint,
            arrival=arrival,
            slack=arrival - hold_time,
            path=path,
        )
        for endpoint, (arrival, path) in best_per_endpoint.items()
    ]
    entries.sort(key=lambda e: e.slack)
    return entries


def format_slack_report(entries: Sequence[SlackEntry]) -> str:
    lines = ["endpoint       arrival(ps)   slack(ps)  status"]
    for e in entries:
        status = "VIOLATED" if e.violated else "met"
        lines.append(
            f"{e.endpoint:<14s} {e.arrival * 1e12:10.1f} {e.slack * 1e12:10.1f}  {status}"
        )
    return "\n".join(lines)
