"""The nine-valued transition logic with semi-undetermined values.

Every node value is a pair *(initial, final)* of three-valued levels,
encoded as ``init * 3 + final`` with ``0, 1, X=2``:

====== ======= ====================================================
name   (i, f)  meaning
====== ======= ====================================================
S0     (0, 0)  steady 0
S1     (1, 1)  steady 1
RISE   (0, 1)  rising transition
FALL   (1, 0)  falling transition
X0     (X, 0)  semi-undetermined, settles to 0  (paper's "X0")
X1     (X, 1)  semi-undetermined, settles to 1
ZX     (0, X)  starts at 0, end unknown
OX     (1, X)  starts at 1, end unknown
XX     (X, X)  unknown
====== ======= ====================================================

The semi-undetermined values are what lets the implication engine flag
a conflict *before* all implied nodes are assigned (the paper's AND2
example: a falling edge on one input with the other input unknown gives
``X0``, which already contradicts a required steady 1).

The paper's *dual value* system -- tracing the rising and the falling
input transition in a single pass -- is realized one level up: the
engine stores one of these values per node **per polarity component**
and kills components independently (see :mod:`repro.core.engine`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.gates.cell import Cell
from repro.gates.logic import TriValue, X

#: Three-valued encoding used inside the packed value.
_X3 = 2


class Value9:
    """Namespace of packed 9-valued constants and operations."""

    S0 = 0 * 3 + 0
    S1 = 1 * 3 + 1
    RISE = 0 * 3 + 1
    FALL = 1 * 3 + 0
    X0 = _X3 * 3 + 0
    X1 = _X3 * 3 + 1
    ZX = 0 * 3 + _X3
    OX = 1 * 3 + _X3
    XX = _X3 * 3 + _X3

    ALL = (S0, S1, RISE, FALL, X0, X1, ZX, OX, XX)

    NAMES = {
        S0: "S0",
        S1: "S1",
        RISE: "R",
        FALL: "F",
        X0: "X0",
        X1: "X1",
        ZX: "0X",
        OX: "1X",
        XX: "XX",
    }

    @staticmethod
    def pack(init: TriValue, final: TriValue) -> int:
        i = _X3 if init is X else init
        f = _X3 if final is X else final
        return i * 3 + f

    @staticmethod
    def unpack(value: int) -> Tuple[TriValue, TriValue]:
        i, f = divmod(value, 3)
        return (X if i == _X3 else i, X if f == _X3 else f)

    @staticmethod
    def steady(bit: int) -> int:
        return Value9.S1 if bit else Value9.S0

    @staticmethod
    def transition(rising: bool) -> int:
        return Value9.RISE if rising else Value9.FALL

    @staticmethod
    def name(value: int) -> str:
        return Value9.NAMES[value]

    @staticmethod
    def is_steady(value: int) -> bool:
        return value in (Value9.S0, Value9.S1)

    @staticmethod
    def is_transition(value: int) -> bool:
        return value in (Value9.RISE, Value9.FALL)

    @staticmethod
    def final_of(value: int) -> TriValue:
        f = value % 3
        return X if f == _X3 else f

    @staticmethod
    def init_of(value: int) -> TriValue:
        i = value // 3
        return X if i == _X3 else i


def _merge3(a: int, b: int) -> int:
    """Three-valued knowledge merge on the raw {0,1,2=X} encoding.

    Returns the merged level, or -1 on a 0/1 conflict.
    """
    if a == _X3:
        return b
    if b == _X3 or a == b:
        return a
    return -1


def _merge9_compute(a: int, b: int) -> int:
    ia, fa = divmod(a, 3)
    ib, fb = divmod(b, 3)
    i = _merge3(ia, ib)
    if i < 0:
        return -1
    f = _merge3(fa, fb)
    if f < 0:
        return -1
    return i * 3 + f


#: Flat 9x9 lookup of the merge lattice (index ``a * 9 + b``); merging
#: is the single hottest operation of the search, so it is a table.
MERGE_TABLE: Tuple[int, ...] = tuple(
    _merge9_compute(a, b) for a in range(9) for b in range(9)
)


def merge9(a: int, b: int) -> int:
    """Combine two pieces of knowledge about one node.

    Returns the merged packed value or -1 on conflict.  ``merge9`` is
    the meet of the information lattice: X components accept anything,
    determined components must agree.
    """
    return MERGE_TABLE[a * 9 + b]


def covers(general: int, specific: int) -> bool:
    """Whether ``specific`` refines ``general`` (merge adds nothing new
    to ``specific``)."""
    return merge9(general, specific) == specific


class CellEvaluator:
    """Memoized 9-valued evaluation of one cell.

    Evaluates the initial and final three-valued components separately,
    which is exact for single-transition two-pattern analysis and yields
    the semi-undetermined values automatically.
    """

    def __init__(self, cell: Cell):
        self.cell = cell
        self._memo: Dict[Tuple[int, ...], int] = {}
        self._dynamic_cubes: Dict[int, List[Dict[str, int]]] = {}

    def evaluate(self, values: Sequence[int]) -> int:
        key = values if type(values) is tuple else tuple(values)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        inits: List[TriValue] = []
        finals: List[TriValue] = []
        for v in values:
            i, f = Value9.unpack(v)
            inits.append(i)
            finals.append(f)
        out = Value9.pack(self.cell.func.eval3(inits), self.cell.func.eval3(finals))
        self._memo[key] = out
        return out

    def dynamic_cubes(self, target: int) -> List[Dict[str, int]]:
        """Minimal 9-valued input cubes forcing the output to ``target``.

        Unlike the static cubes of
        :meth:`repro.gates.cell.Cell.justification_cubes`, literals may
        be transitions (RISE/FALL), which is what justifies a steady
        requirement *inside the transition cone* -- e.g. an XNOR output
        is steady 0 when its inputs carry opposite transitions.  Cubes
        are partial pin assignments over {S0, S1, RISE, FALL}, minimal,
        ordered smallest-first; unassigned pins are unconstrained (XX).
        """
        cached = self._dynamic_cubes.get(target)
        if cached is not None:
            return cached
        import itertools

        pins = self.cell.inputs
        n = len(pins)
        domain = (Value9.S0, Value9.S1, Value9.RISE, Value9.FALL)
        minimal: List[Dict[int, int]] = []  # keyed by pin index
        for size in range(n + 1):
            for subset in itertools.combinations(range(n), size):
                for values in itertools.product(domain, repeat=size):
                    cube = dict(zip(subset, values))
                    if any(
                        all(cube.get(k) == v for k, v in prev.items())
                        for prev in minimal
                    ):
                        continue  # a smaller cube already covers this one
                    assignment = [cube.get(k, Value9.XX) for k in range(n)]
                    if self.evaluate(assignment) == target:
                        minimal.append(cube)
        cubes = [{pins[k]: v for k, v in cube.items()} for cube in minimal]
        self._dynamic_cubes[target] = cubes
        return cubes
