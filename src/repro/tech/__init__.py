"""Technology parameter sets for the three CMOS nodes of the evaluation."""

from repro.tech.technology import Technology
from repro.tech.presets import TECHNOLOGIES, technology

__all__ = ["TECHNOLOGIES", "Technology", "technology"]
