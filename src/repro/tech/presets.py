"""The three technology presets of the evaluation.

Values are calibrated against the paper's Tables 3-4 (AO22 input A and
OA12 input C loaded with a same-type gate, nominal supply, 25C):

* **130 nm** -- AO22/A case 1 around 120 ps, falling-input delay spread
  of roughly +20% (case 2) / +13% (case 3);
* **90 nm**  -- fastest node, case 1 around 60 ps, largest spreads;
* **65 nm**  -- low-power flavour (high Vt at VDD=1.0 V), *slower* than
  90 nm as in the paper, with the smallest spreads (~+12%/+7%), obtained
  with a load-dominated output stage.

``tests/test_spice_calibration.py`` locks these properties in.
"""

from __future__ import annotations

from typing import Dict, List

from repro.tech.technology import DeviceParams, Technology

_FF = 1e-15

TECH_130 = Technology(
    name="cmos130",
    node_nm=130,
    vdd=1.2,
    nmos=DeviceParams(vt0=0.34, k=700e-6, c_gate=1.2 * _FF, c_diff=0.8 * _FF),
    pmos=DeviceParams(vt0=0.36, k=294e-6, c_gate=1.2 * _FF, c_diff=0.8 * _FF),
    pmos_ratio=1.6,
    c_wire=0.4 * _FF,
    out_inv_width=1.5,
)

TECH_90 = Technology(
    name="cmos90",
    node_nm=90,
    vdd=1.1,
    nmos=DeviceParams(vt0=0.30, k=1000e-6, c_gate=0.7 * _FF, c_diff=0.5 * _FF),
    pmos=DeviceParams(vt0=0.32, k=400e-6, c_gate=0.7 * _FF, c_diff=0.5 * _FF),
    pmos_ratio=1.5,
    c_wire=0.3 * _FF,
    out_inv_width=1.5,
)

TECH_65 = Technology(
    name="cmos65",
    node_nm=65,
    vdd=1.0,
    nmos=DeviceParams(vt0=0.38, k=640e-6, c_gate=1.0 * _FF, c_diff=0.2 * _FF),
    pmos=DeviceParams(vt0=0.40, k=320e-6, c_gate=1.0 * _FF, c_diff=0.2 * _FF),
    pmos_ratio=2.2,
    c_wire=1.0 * _FF,
    out_inv_width=0.6,
)

#: Node name -> technology, in the order the paper reports.
TECHNOLOGIES: Dict[str, Technology] = {
    "130nm": TECH_130,
    "90nm": TECH_90,
    "65nm": TECH_65,
}


def technology(name: str) -> Technology:
    """Look up a preset by name (``"130nm"``, ``"90nm"``, ``"65nm"``)."""
    try:
        return TECHNOLOGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown technology {name!r}; available: {list(TECHNOLOGIES)}"
        ) from None


def technology_names() -> List[str]:
    return list(TECHNOLOGIES)
