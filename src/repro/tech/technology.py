"""Technology description consumed by the electrical simulator.

The device model is a long-channel quadratic MOSFET with temperature-
dependent mobility and threshold.  It is deliberately simple -- the
phenomena the paper studies (sensitization-vector-dependent delay of
complex gates) are properties of the *transistor network topology*:
parallel ON devices increase available current, and ON devices hanging
off internal stack nodes steal charge.  Both survive any monotone
I(V) device model; see DESIGN.md section 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

#: Reference temperature for parameter values (Celsius).
T_NOMINAL_C = 25.0
_T0_K = 273.15 + T_NOMINAL_C


@dataclass(frozen=True)
class DeviceParams:
    """One transistor flavour (NMOS or PMOS)."""

    #: Zero-bias threshold voltage magnitude at 25C (V).
    vt0: float
    #: Transconductance per unit width at 25C (A/V^2).
    k: float
    #: Gate capacitance per unit width (F).
    c_gate: float
    #: Source/drain diffusion capacitance per unit width (F).
    c_diff: float
    #: Mobility temperature exponent: k(T) = k * (T/T0)**mob_exp.
    mob_exp: float = -1.5
    #: Threshold temperature coefficient (V/K, applied to the magnitude).
    vt_tc: float = -1.0e-3

    def k_at(self, temp_c: float) -> float:
        t_k = 273.15 + temp_c
        return self.k * (t_k / _T0_K) ** self.mob_exp

    def vt_at(self, temp_c: float) -> float:
        return max(0.05, self.vt0 + self.vt_tc * (temp_c - T_NOMINAL_C))


@dataclass(frozen=True)
class Technology:
    """A CMOS process node as seen by :mod:`repro.spice`."""

    name: str
    node_nm: int
    #: Nominal supply (V).
    vdd: float
    nmos: DeviceParams
    pmos: DeviceParams
    #: PMOS width multiplier applied by cells to balance rise/fall.
    pmos_ratio: float = 2.0
    #: Extra fixed wiring capacitance per cell output (F).
    c_wire: float = 0.2e-15
    #: Width of the output inverter of buffered (non-inverting) cells.
    out_inv_width: float = 1.5

    def describe(self) -> Dict[str, float]:
        return {
            "node_nm": self.node_nm,
            "vdd": self.vdd,
            "nmos_vt": self.nmos.vt0,
            "pmos_vt": self.pmos.vt0,
            "nmos_k": self.nmos.k,
            "pmos_k": self.pmos.k,
        }

    def scaled(self, **overrides) -> "Technology":
        """A copy with some top-level fields replaced (corners, ablations)."""
        return replace(self, **overrides)
