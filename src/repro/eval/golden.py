"""Glue between STA paths and the electrical golden reference.

``simulate_timed_path`` replays a :class:`~repro.core.path.TimedPath`
through the transistor-level chain simulator with the same sensitization
vectors and the same per-stage loads the STA used, giving the golden
per-gate and path delays of Tables 5 and 7-9.

``estimate_path_with`` recomputes a path's delay under a different
delay calculator (e.g. the baseline's vector-blind LUTs) so both tools
can be scored against the same golden number.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.charlib.fanout import output_load
from repro.charlib.store import CharacterizedLibrary
from repro.core.delaycalc import DelayCalculator
from repro.core.engine import EngineCircuit
from repro.core.path import PolarityTiming, TimedPath
from repro.netlist.circuit import Circuit
from repro.spice.pathsim import PathSimResult, PathSimulator, PathStage
from repro.tech.technology import Technology


def path_stages(
    circuit: Circuit,
    charlib: CharacterizedLibrary,
    path: TimedPath,
) -> List[PathStage]:
    """Electrical stages for a timed path (cells, vectors, real loads)."""
    stages: List[PathStage] = []
    for step in path.steps:
        inst = circuit.instances[step.gate_name]
        cell = inst.cell
        vector = cell.vector_by_id(step.vector_id)
        c_load = output_load(circuit, inst, charlib)
        stages.append(PathStage(cell=cell, pin=step.pin, vector=vector, c_load=c_load))
    return stages


def simulate_timed_path(
    circuit: Circuit,
    charlib: CharacterizedLibrary,
    tech: Technology,
    path: TimedPath,
    polarity: PolarityTiming,
    input_slew: float = 40e-12,
    steps_per_window: int = 400,
    simulator: Optional[PathSimulator] = None,
) -> PathSimResult:
    """Golden electrical measurement of one path polarity."""
    sim = simulator or PathSimulator(tech, steps_per_window=steps_per_window)
    stages = path_stages(circuit, charlib, path)
    return sim.run(stages, input_rising=polarity.input_rising, t_in_first=input_slew)


def estimate_path_with(
    calc: DelayCalculator,
    ec: EngineCircuit,
    path: TimedPath,
    polarity: PolarityTiming,
    propagate_slew: bool = True,
) -> Tuple[float, List[float]]:
    """Re-estimate a path's (total delay, per-gate delays) under another
    delay calculator (used to score the baseline on the same paths).

    ``propagate_slew=False`` evaluates every stage at the nominal input
    slew instead of the previous stage's output slew -- the ablation for
    the paper's remark that the output transition time "is required to
    compute the propagation delay of the next gate within the path".
    """
    t_in = calc.input_slew
    rising = polarity.input_rising
    total = 0.0
    gate_delays: List[float] = []
    for step in path.steps:
        inst = ec.circuit.instances[step.gate_name]
        gate = ec.gates[ec.driver[ec.net_id[inst.output_net]]]
        vector = inst.cell.vector_by_id(step.vector_id)
        out_rising = rising ^ vector.inverting
        delay, slew = calc.arc_timing(
            gate, step.pin, step.vector_id, rising, out_rising, t_in
        )
        gate_delays.append(delay)
        total += delay
        t_in = slew if propagate_slew else calc.input_slew
        rising = out_rising
    return total, gate_delays
