"""Experiment: Figure 4 / Table 5 -- the example-circuit case study.

Runs both tools on the Figure 4 circuit and verifies the paper's story:

* the commercial-style tool reports a single input vector for the
  critical path -- the easiest one (``N6=0``);
* the developed tool reports every vector for the same course,
  including the genuinely slower ``N6=1, N7=0`` case;
* golden electrical simulation of the two vectors shows the harder
  vector is several percent slower (the paper measures 387.6 ps vs
  361.1 ps, a 7.3% gap, at 130 nm).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baseline.sta2step import TwoStepSTA
from repro.charlib.store import CharacterizedLibrary
from repro.core.sta import TruePathSTA
from repro.eval.fig4 import CRITICAL_NETS, critical_path_vectors, fig4_circuit
from repro.eval.golden import simulate_timed_path
from repro.eval.tables import render_table
from repro.tech.technology import Technology


def run(
    tech: Technology,
    charlib_poly: CharacterizedLibrary,
    charlib_lut: CharacterizedLibrary,
    steps_per_window: int = 400,
    simulate: bool = True,
) -> Dict:
    circuit = fig4_circuit()

    sta = TruePathSTA(circuit, charlib_poly)
    all_paths = sta.enumerate_paths()
    dev_variants = critical_path_vectors(all_paths)

    baseline = TwoStepSTA(circuit, charlib_lut, backtrack_limit=1000)
    report = baseline.run(max_structural_paths=200)
    base_variants = critical_path_vectors(baseline.true_paths(report))

    rows: List[Dict] = []
    for path in dev_variants:
        polarity = path.fall or path.rise
        entry = {
            "vector_signature": path.vector_signature,
            "input_vector": polarity.input_vector,
            "model_delay": polarity.arrival,
        }
        if simulate:
            golden = simulate_timed_path(
                circuit, charlib_poly, tech, path, polarity,
                steps_per_window=steps_per_window,
            )
            entry["golden_delay"] = golden.path_delay
        rows.append(entry)
    rows.sort(key=lambda r: -r["model_delay"])

    base_signatures = {p.vector_signature for p in base_variants}
    worst = rows[0] if rows else None
    result = {
        "circuit": circuit,
        "developed_variants": dev_variants,
        "baseline_variants": base_variants,
        "rows": rows,
        "baseline_signatures": base_signatures,
        "baseline_missed_worst": bool(
            worst and worst["vector_signature"] not in base_signatures
        ),
    }
    if simulate and len(rows) >= 2:
        goldens = [r["golden_delay"] for r in rows if "golden_delay" in r]
        result["golden_gap"] = max(goldens) / min(goldens) - 1.0

    headers = ["N-vector (PI assignment)", "model delay (ps)", "golden delay (ps)"]
    table_rows = []
    for r in rows:
        vec_text = ", ".join(
            f"{k}={'X' if v is None else v}" for k, v in sorted(r["input_vector"].items())
        )
        table_rows.append(
            [
                vec_text,
                f"{r['model_delay'] * 1e12:.2f}",
                f"{r.get('golden_delay', float('nan')) * 1e12:.2f}" if simulate else "-",
            ]
        )
    result["text"] = render_table(
        headers, table_rows,
        title=f"Table 5: Fig. 4 critical path {' -> '.join(CRITICAL_NETS)}",
    )
    return result
