"""Experiment: Figures 2 and 3 -- transistor-level current-path analysis.

The figures are schematics; their *content* is the ON/OFF/switching
state of every transistor of AO22 (falling input A) and OA12 (rising
input C) under each sensitization vector, plus the causal explanation
of the delay ordering.  This experiment regenerates that annotation and
checks the claims:

* the fastest case has **both** parallel devices of the stack feeding
  the switching transistor ON (pC and pD for AO22 case 1, nA and nB for
  OA12 case 3);
* the difference between the two single-device cases comes from an
  extra ON device of the opposite network charging internal parasitics
  (nC in AO22 case 2, pB in OA12 case 2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.eval.transistor_report import VectorAnalysis, analyze_vector
from repro.gates.library import Library, default_library
from repro.tech.presets import TECHNOLOGIES
from repro.tech.technology import Technology


def analyses_for(
    cell_name: str,
    pin: str,
    input_rising: bool,
    tech: Optional[Technology] = None,
    library: Optional[Library] = None,
) -> List[VectorAnalysis]:
    library = library or default_library()
    tech = tech or TECHNOLOGIES["130nm"]
    cell = library[cell_name]
    return [
        analyze_vector(cell, tech, vec, input_rising)
        for vec in cell.sensitization_vectors(pin)
    ]


def run(tech: Optional[Technology] = None,
        library: Optional[Library] = None) -> Dict:
    """Regenerate the Figure 2 (AO22, falling A) and Figure 3 (OA12,
    rising C) annotations."""
    fig2 = analyses_for("AO22", "A", input_rising=False, tech=tech, library=library)
    fig3 = analyses_for("OA12", "C", input_rising=True, tech=tech, library=library)

    def stack_on_counts(analyses: List[VectorAnalysis], kind: str) -> Dict[int, int]:
        return {a.case: a.on_count(kind) for a in analyses}

    summary = {
        # AO22 falling A: output charged through the PMOS network; the
        # fast case is the one with the most steady-ON PMOS devices.
        "fig2_pmos_on_per_case": stack_on_counts(fig2, "p"),
        # The charge-stealing NMOS of case 2 (device gated by pin C).
        "fig2_nmos_on_per_case": stack_on_counts(fig2, "n"),
        # OA12 rising C: output discharged through the NMOS network.
        "fig3_nmos_on_per_case": stack_on_counts(fig3, "n"),
        "fig3_pmos_on_per_case": stack_on_counts(fig3, "p"),
    }
    text = "\n\n".join(
        ["Figure 2 (AO22, falling input A):"]
        + [a.describe() for a in fig2]
        + ["Figure 3 (OA12, rising input C):"]
        + [a.describe() for a in fig3]
    )
    return {"fig2": fig2, "fig3": fig3, "summary": summary, "text": text}
