"""Command-line experiment driver.

Regenerates the paper's tables from the terminal::

    python -m repro.eval.run --experiment tables12
    python -m repro.eval.run --experiment tables34 --steps 300
    python -m repro.eval.run --experiment table5 --tech 130nm
    python -m repro.eval.run --experiment table6 --tech 90nm --circuits c17 c432
    python -m repro.eval.run --experiment accuracy --tech 65nm

The first run per technology characterizes the library (a few minutes);
results are cached on disk afterwards.
"""

from __future__ import annotations

import argparse
import sys

from repro.charlib.characterize import CharacterizationGrid, characterize_library
from repro.gates.library import default_library
from repro.tech.presets import TECHNOLOGIES


def _charlibs(tech, grid=None):
    library = default_library()
    poly = characterize_library(library, tech, grid=grid, model="polynomial",
                                vector_mode="all")
    lut = characterize_library(library, tech, grid=grid, model="lut",
                               vector_mode="default")
    return poly, lut


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--experiment",
        required=True,
        choices=["tables12", "tables34", "fig23", "table5", "table6",
                 "accuracy", "simultaneous", "pvt", "gba"],
    )
    parser.add_argument("--tech", default="130nm", choices=list(TECHNOLOGIES))
    parser.add_argument("--circuits", nargs="*", default=None)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="shrink suite circuits for quick runs")
    parser.add_argument("--steps", type=int, default=400,
                        help="transient steps per simulation window")
    parser.add_argument("--paths", type=int, default=6,
                        help="electrically simulated paths per circuit")
    parser.add_argument("--max-dev-paths", type=int, default=20000)
    parser.add_argument("--backtrack-limit", type=int, default=1000)
    args = parser.parse_args(argv)

    tech = TECHNOLOGIES[args.tech]

    if args.experiment == "tables12":
        from repro.eval import exp_tables12

        print(exp_tables12.run()["text"])
        return 0
    if args.experiment == "tables34":
        from repro.eval import exp_tables34

        print(exp_tables34.run(steps_per_window=args.steps)["text"])
        return 0
    if args.experiment == "fig23":
        from repro.eval import exp_fig23

        print(exp_fig23.run(tech=tech)["text"])
        return 0
    if args.experiment == "simultaneous":
        from repro.eval import exp_simultaneous

        print(exp_simultaneous.skew_sweep(tech,
                                          steps_per_window=args.steps)["text"])
        return 0
    if args.experiment == "pvt":
        from repro.eval.exp_pvt import characterize_pvt, corner_analysis
        from repro.eval.fig4 import fig4_circuit

        cells = ["INV", "BUF", "NAND2", "AND2", "AO22"]
        charlib = characterize_pvt(tech, cells, steps_per_window=args.steps)
        print(corner_analysis(fig4_circuit(), charlib, tech)["text"])
        return 0

    poly, lut = _charlibs(tech)
    if args.experiment == "table5":
        from repro.eval import exp_table5

        print(exp_table5.run(tech, poly, lut, steps_per_window=args.steps)["text"])
        return 0
    if args.experiment == "table6":
        from repro.eval import exp_table6

        print(
            exp_table6.run(
                poly,
                lut,
                circuits=args.circuits,
                scale=args.scale,
                backtrack_limit=args.backtrack_limit,
                max_dev_paths=args.max_dev_paths,
            )["text"]
        )
        return 0
    if args.experiment == "gba":
        from repro.core.graphsta import GraphSTA, gba_pessimism
        from repro.core.sta import TruePathSTA
        from repro.eval.iscas import build_circuit
        from repro.eval.tables import render_table

        rows = []
        for name in (args.circuits or ["c432", "c880a"]):
            circuit = build_circuit(name, scale=args.scale)
            gba = GraphSTA(circuit, poly).run()
            paths = TruePathSTA(circuit, poly).enumerate_paths(
                max_paths=args.max_dev_paths
            )
            comparison = gba_pessimism(gba, paths)
            for endpoint, row in sorted(comparison.items()):
                rows.append([
                    name, endpoint,
                    f"{row['gba'] * 1e12:.1f}",
                    f"{row['true'] * 1e12:.1f}",
                    f"{row['pessimism'] * 100:+.1f}%",
                ])
        print(render_table(
            ["circuit", "endpoint", "GBA (ps)", "true worst (ps)",
             "pessimism"], rows,
            title="Graph-based vs true-path endpoint arrivals",
        ))
        return 0
    if args.experiment == "accuracy":
        from repro.eval import exp_accuracy

        print(
            exp_accuracy.run(
                tech,
                poly,
                lut,
                circuits=args.circuits,
                scale=args.scale,
                paths_per_circuit=args.paths,
                steps_per_window=args.steps,
            )["text"]
        )
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
