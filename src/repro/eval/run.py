"""Command-line experiment driver.

Regenerates the paper's tables from the terminal::

    python -m repro.eval.run --experiment tables12
    python -m repro.eval.run --experiment tables34 --steps 300
    python -m repro.eval.run --experiment table5 --tech 130nm
    python -m repro.eval.run --experiment table6 --tech 90nm --circuits c17 c432
    python -m repro.eval.run --experiment accuracy --tech 65nm

The first run per technology characterizes the library (a few minutes);
results are cached on disk afterwards.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import obs
from repro.charlib.characterize import CharacterizationGrid, characterize_library
from repro.gates.library import default_library
from repro.tech.presets import TECHNOLOGIES


def _charlibs(tech, grid=None):
    library = default_library()
    poly = characterize_library(library, tech, grid=grid, model="polynomial",
                                vector_mode="all")
    lut = characterize_library(library, tech, grid=grid, model="lut",
                               vector_mode="default")
    return poly, lut


def _finish(args, result) -> int:
    """Common epilogue: print the experiment text, attach and emit the
    observability snapshot."""
    if isinstance(result, dict):
        result["metrics"] = obs.snapshot()
        print(result["text"])
    else:
        print(result)
    if args.profile:
        print()
        print(obs.tracing.render())
    if args.metrics_json:
        try:
            Path(args.metrics_json).write_text(
                json.dumps(obs.snapshot(), indent=2)
            )
        except OSError as exc:
            print(f"\nerror: cannot write metrics snapshot: {exc}",
                  file=sys.stderr)
            return 1
        print(f"\nwrote metrics snapshot to {args.metrics_json}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--experiment",
        required=True,
        choices=["tables12", "tables34", "fig23", "table5", "table6",
                 "accuracy", "simultaneous", "pvt", "gba", "pruning"],
    )
    parser.add_argument("--tech", default="130nm", choices=list(TECHNOLOGIES))
    parser.add_argument("--circuits", nargs="*", default=None)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="shrink suite circuits for quick runs")
    parser.add_argument("--steps", type=int, default=400,
                        help="transient steps per simulation window")
    parser.add_argument("--paths", type=int, default=6,
                        help="electrically simulated paths per circuit")
    parser.add_argument("--max-dev-paths", type=int, default=20000)
    parser.add_argument("--backtrack-limit", type=int, default=1000)
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="shard developed-tool searches across primary "
                             "inputs in N worker processes")
    parser.add_argument("--log-level", default=None,
                        choices=["debug", "info", "warning", "error"],
                        help="enable structured logging at this level")
    parser.add_argument("--profile", action="store_true",
                        help="trace spans and print the span tree")
    parser.add_argument("--metrics-json", default=None, metavar="PATH",
                        help="write the metrics+span snapshot to PATH")
    args = parser.parse_args(argv)

    if args.log_level:
        obs.configure_logging(level=args.log_level)
    if args.profile:
        obs.tracing.enable()

    tech = TECHNOLOGIES[args.tech]

    if args.experiment == "tables12":
        from repro.eval import exp_tables12

        return _finish(args, exp_tables12.run())
    if args.experiment == "tables34":
        from repro.eval import exp_tables34

        return _finish(args, exp_tables34.run(steps_per_window=args.steps))
    if args.experiment == "fig23":
        from repro.eval import exp_fig23

        return _finish(args, exp_fig23.run(tech=tech))
    if args.experiment == "simultaneous":
        from repro.eval import exp_simultaneous

        return _finish(
            args, exp_simultaneous.skew_sweep(tech, steps_per_window=args.steps)
        )
    if args.experiment == "pvt":
        from repro.eval.exp_pvt import characterize_pvt, corner_analysis
        from repro.eval.fig4 import fig4_circuit

        cells = ["INV", "BUF", "NAND2", "AND2", "AO22"]
        charlib = characterize_pvt(tech, cells, steps_per_window=args.steps)
        return _finish(args, corner_analysis(fig4_circuit(), charlib, tech))

    poly, lut = _charlibs(tech)
    if args.experiment == "table5":
        from repro.eval import exp_table5

        return _finish(
            args, exp_table5.run(tech, poly, lut, steps_per_window=args.steps)
        )
    if args.experiment == "table6":
        from repro.eval import exp_table6

        return _finish(
            args,
            exp_table6.run(
                poly,
                lut,
                circuits=args.circuits,
                scale=args.scale,
                backtrack_limit=args.backtrack_limit,
                max_dev_paths=args.max_dev_paths,
            ),
        )
    if args.experiment == "pruning":
        from repro.eval import exp_pruning

        return _finish(
            args,
            exp_pruning.run(
                poly,
                circuits=args.circuits,
                scale=args.scale,
                max_dev_paths=args.max_dev_paths,
                jobs=args.jobs,
            ),
        )
    if args.experiment == "gba":
        from repro.core.graphsta import GraphSTA, gba_pessimism
        from repro.core.sta import TruePathSTA
        from repro.eval.iscas import build_circuit
        from repro.eval.tables import render_table

        rows = []
        for name in (args.circuits or ["c432", "c880a"]):
            circuit = build_circuit(name, scale=args.scale)
            gba = GraphSTA(circuit, poly).run()
            paths = TruePathSTA(circuit, poly).enumerate_paths(
                max_paths=args.max_dev_paths, jobs=args.jobs
            )
            comparison = gba_pessimism(gba, paths)
            for endpoint, row in sorted(comparison.items()):
                rows.append([
                    name, endpoint,
                    f"{row['gba'] * 1e12:.1f}",
                    f"{row['true'] * 1e12:.1f}",
                    f"{row['pessimism'] * 100:+.1f}%",
                ])
        return _finish(args, render_table(
            ["circuit", "endpoint", "GBA (ps)", "true worst (ps)",
             "pessimism"], rows,
            title="Graph-based vs true-path endpoint arrivals",
        ))
    if args.experiment == "accuracy":
        from repro.eval import exp_accuracy

        return _finish(
            args,
            exp_accuracy.run(
                tech,
                poly,
                lut,
                circuits=args.circuits,
                scale=args.scale,
                paths_per_circuit=args.paths,
                steps_per_window=args.steps,
            ),
        )
    return 1


if __name__ == "__main__":
    sys.exit(main())
