"""The paper's Figure 4 example circuit (reconstructed).

The original figure is only described in prose: a seven-input circuit
whose critical path runs a falling edge through nodes
``N1 -> n10 -> n11 -> n12 -> N20`` where ``n12`` is the output of an
AO22 traversed through pin A, and where

* the *easiest* sensitization assigns ``N6 = 0`` (forcing the AO22's C
  and D side inputs to 0 without touching ``N7`` -- the paper's vector
  ``N1=F, N2..N5=1, N6=0, N7=X``), which is AO22 case 1 (fast);
* a *harder* sensitization (``N6=1, N7=0``) drives ``C=1, D=0`` -- AO22
  case 2, the genuinely slowest vector the commercial tool misses.

This module builds a concrete circuit with exactly those two input
vectors for the critical path (a third, ``N6=1, N7=1`` -> case 3, also
exists in our reconstruction).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.gates.library import Library, default_library
from repro.netlist.circuit import Circuit

#: The paper's two reported input vectors for the critical path.
PAPER_VECTOR_SLOW: Dict[str, object] = {
    "N1": "F", "N2": 1, "N3": 1, "N4": 1, "N5": 1, "N6": 1, "N7": 0,
}
PAPER_VECTOR_EASY: Dict[str, object] = {
    "N1": "F", "N2": 1, "N3": 1, "N4": 1, "N5": 1, "N6": 0, "N7": None,
}

#: The critical path's nets, in order.
CRITICAL_NETS: Tuple[str, ...] = ("N1", "n10", "n11", "n12", "N20")


def fig4_circuit(library: Optional[Library] = None) -> Circuit:
    """Build the Figure 4 example circuit."""
    c = Circuit("fig4", library or default_library())
    for k in range(1, 8):
        c.add_input(f"N{k}")
    c.add_gate("NAND2", "n10", {"A": "N1", "B": "N2"}, name="U10")
    c.add_gate("NAND2", "n11", {"A": "n10", "B": "N3"}, name="U11")
    # Side-input cone of the AO22: C = N6 & ~N7, D = N6 & N7, so N6=0
    # zeroes both (easy, case 1) while N6=1/N7=0 yields C=1, D=0 (case 2).
    c.add_gate("INV", "n7n", {"A": "N7"}, name="U7")
    c.add_gate("AND2", "n13", {"A": "N6", "B": "n7n"}, name="U13")
    c.add_gate("AND2", "n14", {"A": "N6", "B": "N7"}, name="U14")
    c.add_gate("AO22", "n12", {"A": "n11", "B": "N4", "C": "n13", "D": "n14"},
               name="U12")
    c.add_gate("NAND2", "N20", {"A": "n12", "B": "N5"}, name="U20")
    c.add_output("N20")
    c.check()
    return c


def critical_path_vectors(paths) -> List:
    """Filter a path list down to the Figure 4 critical path's vector
    variants (any polarity)."""
    return [p for p in paths if p.nets == CRITICAL_NETS]
