"""Extension experiment: simultaneous input transitions.

The paper restricts itself to "steady logic values applied to the
inputs of complex gates" and names multiple simultaneous transitions as
future work.  The electrical substrate has no such restriction, so this
experiment measures the effect the restriction ignores: two inputs of a
complex gate switching with a relative skew.  The classic result (and
what the transistor networks produce): when both inputs of the same
AND-branch of an AO22 rise together, the output transition is *slower*
than the single-input case (series devices turn on simultaneously), with
the push-out largest at zero skew and vanishing as the skew grows beyond
the transition time.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.eval.tables import render_table
from repro.gates.library import Library, default_library
from repro.spice.cellsim import CellSimulator, input_capacitance
from repro.spice.simulator import TransientSolver, constant, ramp
from repro.spice import measure
from repro.tech.technology import Technology


def dual_input_delay(
    cell_name: str,
    pin_a: str,
    pin_b: str,
    side_values: Dict[str, int],
    tech: Technology,
    skew: float,
    t_in: float = 50e-12,
    rising: bool = True,
    c_load: Optional[float] = None,
    steps_per_window: int = 400,
    library: Optional[Library] = None,
) -> float:
    """Delay from ``pin_a``'s edge to the output, with ``pin_b``
    switching ``skew`` seconds later (same direction)."""
    library = library or default_library()
    cell = library[cell_name]
    sim = CellSimulator(cell, tech, steps_per_window=steps_per_window)
    load = c_load if c_load is not None else input_capacitance(cell, pin_a, tech)

    span = t_in / 0.8
    start_a = 0.05 * span + 1e-12
    start_b = start_a + skew
    v_from = 0.0 if rising else tech.vdd
    v_to = tech.vdd - v_from

    forced = {pin: constant(tech.vdd * value) for pin, value in side_values.items()}
    forced[pin_a] = ramp(v_from, v_to, start_a, span)
    forced[pin_b] = ramp(v_from, v_to, start_b, span)

    out_initial = cell.evaluate(
        {**side_values, pin_a: 0 if rising else 1, pin_b: 0 if rising else 1}
    )
    out_final = cell.evaluate(
        {**side_values, pin_a: 1 if rising else 0, pin_b: 1 if rising else 0}
    )
    if out_initial == out_final:
        raise ValueError("chosen assignment does not toggle the output")
    out_rising = out_final == 1

    window = max(6.0 * (start_b + span), 4e-10)
    solver = TransientSolver(sim.topo, tech, forced, c_load=load)
    times, traces = solver.run(window, dt=window / steps_per_window,
                               record=[sim.topo.output, pin_a])
    return measure.propagation_delay(
        times, traces[pin_a], traces[sim.topo.output], rising, out_rising,
        tech.vdd,
    )


def skew_sweep(
    tech: Technology,
    skews: Optional[List[float]] = None,
    steps_per_window: int = 300,
) -> Dict:
    """AO22: inputs A and B rising together with varying skew, C=D=0.

    Compares against the single-input reference (B already high), i.e.
    the paper's case-1 arc.
    """
    if skews is None:
        skews = [0.0, 10e-12, 25e-12, 50e-12, 100e-12, 200e-12]
    library = default_library()
    cell = library["AO22"]
    sim = CellSimulator(cell, tech, steps_per_window=steps_per_window)
    reference = sim.propagation(
        "A", cell.vector_by_id("A:100"), True, 50e-12,
        input_capacitance(cell, "A", tech),
    ).delay

    rows = []
    for skew in skews:
        delay = dual_input_delay(
            "AO22", "B", "A", {"C": 0, "D": 0}, tech, skew,
            steps_per_window=steps_per_window,
        )
        # Delay referenced to the *later* edge (the arrival-determining
        # one): the push-out vs the single-input arc isolates the
        # simultaneous-switching effect from plain late arrival.
        from_later = delay - skew
        rows.append({
            "skew": skew,
            "delay": delay,
            "from_later_edge": from_later,
            "push_out": from_later / reference - 1.0,
        })
    text = render_table(
        ["skew (ps)", "from first edge (ps)", "from later edge (ps)",
         "push-out vs single"],
        [[f"{r['skew'] * 1e12:.0f}", f"{r['delay'] * 1e12:.2f}",
          f"{r['from_later_edge'] * 1e12:.2f}",
          f"{r['push_out'] * 100:+.1f}%"] for r in rows],
        title=f"AO22 A&B rising together ({tech.name}); "
              f"single-input reference {reference * 1e12:.2f} ps",
    )
    return {"reference": reference, "rows": rows, "text": text}
