"""Experiment: Tables 7, 8, 9 -- delay accuracy vs electrical simulation.

For each circuit and each technology, a sample of multi-vector true
paths is replayed through the transistor-level chain simulator (the
golden reference).  Both tools then estimate the same paths:

* **developed tool** -- vector-resolved polynomial arcs (it knows which
  sensitization vector each gate sees);
* **commercial baseline** -- vector-blind LUT arcs characterized under
  the default vector.

Mean/max path and gate errors are reported per circuit, matching the
format of Tables 7-9.  The expected shape: the developed tool's mean
path error is a few percent; the baseline's is several times larger,
growing toward the finer node where vector sensitivity is larger
relative to total delay.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.charlib.store import CharacterizedLibrary
from repro.core.delaycalc import DelayCalculator
from repro.core.path import TimedPath
from repro.core.sta import TruePathSTA
from repro.eval.golden import estimate_path_with, simulate_timed_path
from repro.eval.iscas import build_circuit
from repro.eval.metrics import ErrorStats, error_stats
from repro.eval.tables import render_table
from repro.netlist.circuit import Circuit
from repro.spice.pathsim import PathSimulator
from repro.tech.technology import Technology


@dataclass
class AccuracyRow:
    circuit: str
    developed: ErrorStats
    baseline: ErrorStats

    def as_cells(self) -> List[str]:
        d, b = self.developed.as_row(), self.baseline.as_row()
        return [
            self.circuit,
            d["mean_path"], d["max_path"], d["mean_gate"], d["max_gate"],
            b["mean_path"], b["max_path"], b["mean_gate"], b["max_gate"],
        ]


HEADERS = [
    "circuit",
    "dev mean path", "dev max path", "dev mean gate", "dev max gate",
    "base mean path", "base max path", "base mean gate", "base max gate",
]


def select_paths(
    paths: Sequence[TimedPath],
    limit: int,
    seed: int = 0,
    prefer_multi_vector: bool = True,
) -> List[TimedPath]:
    """Sample the paths to simulate electrically (they are the costly
    part; the paper focuses on multi-vector paths)."""
    pool = [p for p in paths if p.multi_vector] if prefer_multi_vector else []
    if len(pool) < limit:
        extra = [p for p in paths if p not in pool]
        pool = pool + extra
    if len(pool) <= limit:
        return list(pool)
    rng = random.Random(seed)
    # Keep the worst path (the headline number) and sample the rest.
    ordered = sorted(pool, key=lambda p: -p.worst_arrival)
    chosen = [ordered[0]] + rng.sample(ordered[1:], limit - 1)
    return chosen


def measure_circuit(
    name: str,
    circuit: Circuit,
    tech: Technology,
    charlib_poly: CharacterizedLibrary,
    charlib_lut: CharacterizedLibrary,
    paths_per_circuit: int = 6,
    max_dev_paths: Optional[int] = 4000,
    steps_per_window: int = 300,
    seed: int = 0,
) -> AccuracyRow:
    sta = TruePathSTA(circuit, charlib_poly)
    paths = sta.enumerate_paths(max_paths=max_dev_paths)
    if not paths:
        raise ValueError(f"{name}: no true paths found")
    sample = select_paths(paths, paths_per_circuit, seed=seed)

    lut_calc = DelayCalculator(
        sta.ec, charlib_lut, temp=sta.calc.temp, vdd=sta.calc.vdd,
        input_slew=sta.calc.input_slew, vector_blind=True,
    )
    simulator = PathSimulator(tech, steps_per_window=steps_per_window)

    dev_path_pairs: List[Tuple[float, float]] = []
    dev_gate_pairs: List[Tuple[float, float]] = []
    base_path_pairs: List[Tuple[float, float]] = []
    base_gate_pairs: List[Tuple[float, float]] = []

    for path in sample:
        polarity = max(path.polarities(), key=lambda p: p.arrival)
        golden = simulate_timed_path(
            circuit, charlib_poly, tech, path, polarity,
            input_slew=sta.calc.input_slew, simulator=simulator,
        )
        dev_path_pairs.append((polarity.arrival, golden.path_delay))
        dev_gate_pairs.extend(zip(polarity.gate_delays, golden.gate_delays))
        base_total, base_gates = estimate_path_with(lut_calc, sta.ec, path, polarity)
        base_path_pairs.append((base_total, golden.path_delay))
        base_gate_pairs.extend(zip(base_gates, golden.gate_delays))

    return AccuracyRow(
        circuit=name,
        developed=error_stats(dev_path_pairs, dev_gate_pairs),
        baseline=error_stats(base_path_pairs, base_gate_pairs),
    )


def run(
    tech: Technology,
    charlib_poly: CharacterizedLibrary,
    charlib_lut: CharacterizedLibrary,
    circuits: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    paths_per_circuit: int = 6,
    max_dev_paths: Optional[int] = 4000,
    steps_per_window: int = 300,
    table_label: str = "Table 7/8/9",
) -> Dict:
    """Regenerate one technology's accuracy table."""
    names = list(circuits) if circuits else ["c17", "c432", "c499"]
    rows: List[AccuracyRow] = []
    for name in names:
        circuit = build_circuit(name, scale=scale)
        rows.append(
            measure_circuit(
                name, circuit, tech, charlib_poly, charlib_lut,
                paths_per_circuit=paths_per_circuit,
                max_dev_paths=max_dev_paths,
                steps_per_window=steps_per_window,
            )
        )
    text = render_table(
        HEADERS, [r.as_cells() for r in rows],
        title=f"{table_label}: delay error vs electrical simulation "
              f"({tech.name})",
    )
    return {"rows": rows, "text": text}
