"""Pruning-effectiveness experiment for the N-worst search.

Runs :meth:`TruePathSTA.n_worst_paths` on suite circuits and tabulates
the search-effort counters, including ``bound_prunes`` -- extensions
cut by the timing graph's backward required-time bound that the legacy
context-free suffix sum would have kept.  The table is the source for
the before/after snapshot in ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.charlib.store import CharacterizedLibrary
from repro.core.sta import TruePathSTA
from repro.eval.iscas import build_circuit
from repro.eval.tables import render_table


def run(
    charlib: CharacterizedLibrary,
    circuits: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    n_worst: int = 10,
    max_dev_paths: int = 20000,
    jobs: int = 1,
) -> str:
    """Render the per-circuit pruning-effort table."""
    rows: List[List[str]] = []
    for name in (circuits or ["c17", "c432", "c880a"]):
        circuit = build_circuit(name, scale=scale)
        sta = TruePathSTA(circuit, charlib)
        start = time.perf_counter()
        paths = sta.n_worst_paths(n_worst, max_paths=max_dev_paths, jobs=jobs)
        elapsed = time.perf_counter() - start
        stats = sta.last_stats
        rows.append([
            name,
            str(len(paths)),
            f"{paths[0].worst_arrival * 1e12:.1f}" if paths else "-",
            str(int(stats.extensions_tried)),
            str(int(stats.pruned)),
            str(int(stats.bound_prunes)),
            f"{elapsed:.2f}",
        ])
    return render_table(
        ["circuit", f"paths (N={n_worst})", "worst (ps)",
         "extensions_tried", "pruned", "bound_prunes", "time (s)"],
        rows,
        title="N-worst search effort with backward required-time pruning",
    )
