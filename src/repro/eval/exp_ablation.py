"""Ablation runners for the design decisions called out in DESIGN.md.

1. **Dual-value logic** -- dual single pass vs two single-polarity
   passes (:func:`dual_logic_ablation`).
2. **Polynomial order** -- fixed first-order vs adaptive vs LUT fit
   accuracy (:func:`model_order_ablation`).
3. **Vector-aware characterization** -- vector-resolved vs vector-blind
   delay estimates on the same paths (quantified by Tables 7-9 and the
   integration tests; helper here for the record).
4. **Backtrack-limit sweep** -- the baseline's c6288 knob
   (:func:`backtrack_limit_sweep`).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baseline.sta2step import TwoStepSTA
from repro.charlib.characterize import CharacterizationGrid, characterize_cell
from repro.charlib.lut import LutModel
from repro.charlib.regression import fit_adaptive, fit_fixed
from repro.charlib.store import CharacterizedLibrary
from repro.core.engine import FALLING, RISING
from repro.core.sta import TruePathSTA
from repro.eval.tables import render_table
from repro.gates.library import default_library
from repro.netlist.circuit import Circuit
from repro.tech.technology import Technology


def dual_logic_ablation(
    circuit: Circuit,
    charlib: CharacterizedLibrary,
    max_paths: Optional[int] = 20000,
) -> Dict:
    """Dual single pass vs two single-polarity passes."""
    sta = TruePathSTA(circuit, charlib)
    start = time.perf_counter()
    dual = sta.enumerate_paths(max_paths=max_paths)
    dual_time = time.perf_counter() - start
    dual_stats = sta.last_stats.as_dict()

    start = time.perf_counter()
    rise = sta.enumerate_paths(max_paths=max_paths, single_polarity=RISING)
    rise_ext = sta.last_stats.extensions_tried
    fall = sta.enumerate_paths(max_paths=max_paths, single_polarity=FALLING)
    fall_ext = sta.last_stats.extensions_tried
    two_time = time.perf_counter() - start

    return {
        "dual_time": dual_time,
        "two_pass_time": two_time,
        "speedup": two_time / dual_time if dual_time else float("inf"),
        "dual_extensions": dual_stats["extensions_tried"],
        "two_pass_extensions": rise_ext + fall_ext,
        "paths": len(dual),
        "consistent": (
            {p.key for p in dual if p.rise} == {p.key for p in rise}
            and {p.key for p in dual if p.fall} == {p.key for p in fall}
        ),
    }


def model_order_ablation(
    tech: Technology,
    cell_name: str = "AO22",
    pin: str = "A",
    vector_id: str = "A:110",
    input_rising: bool = False,
    steps_per_window: int = 250,
) -> Dict:
    """Fit quality of first-order vs adaptive polynomial vs LUT."""
    grid = CharacterizationGrid(
        fo=(0.5, 1.0, 2.0, 4.0, 8.0), t_in=(1e-11, 4e-11, 1.2e-10, 3e-10)
    )
    lib = default_library()
    sweeps = characterize_cell(lib[cell_name], tech, grid,
                               steps_per_window=steps_per_window)
    samples = sweeps[(pin, vector_id, input_rising)]
    points = np.array([[s["fo"], s["t_in"], s["temp"], s["vdd"]] for s in samples])
    delays = np.array([s["delay"] for s in samples])

    _first, first_report = fit_fixed(points, delays, (1, 1, 0, 0))
    adaptive, adaptive_report = fit_adaptive(points, delays, 0.02)
    lut = LutModel.from_samples(samples, grid.t_in, grid.fo, "delay",
                                ref_temp=25.0, ref_vdd=tech.vdd)
    # Off-grid probes: LUT interpolates, polynomial extrapolates smoothly.
    probes = [(1.5, 2.5e-11), (3.0, 8e-11), (6.0, 2e-10)]
    rows = []
    for fo, t_in in probes:
        rows.append({
            "fo": fo,
            "t_in": t_in,
            "adaptive": adaptive.evaluate(fo, t_in, 25.0, tech.vdd),
            "lut": lut.evaluate(fo, t_in, 25.0, tech.vdd),
        })
    return {
        "first_order_max_err": first_report.max_rel_error,
        "adaptive_max_err": adaptive_report.max_rel_error,
        "adaptive_orders": adaptive_report.orders,
        "probes": rows,
    }


def backtrack_limit_sweep(
    circuit: Circuit,
    charlib_lut: CharacterizedLibrary,
    limits: Sequence[int] = (50, 500, 5000),
    max_structural_paths: int = 300,
) -> Dict:
    """The paper's c6288 rows: sweep the baseline's backtrack limit."""
    rows = []
    for limit in limits:
        tool = TwoStepSTA(circuit, charlib_lut, backtrack_limit=limit)
        report = tool.run(max_structural_paths=max_structural_paths)
        rows.append({
            "limit": limit,
            "cpu_s": round(report.cpu_seconds, 3),
            "paths": report.paths_explored,
            "true": report.true_paths,
            "false": report.declared_false,
            "aborted": report.backtrack_limited,
        })
    text = render_table(
        ["limit", "cpu_s", "paths", "true", "false", "aborted"],
        [[r[k] for k in ("limit", "cpu_s", "paths", "true", "false", "aborted")]
         for r in rows],
        title=f"Backtrack-limit sweep on {circuit.name}",
    )
    return {"rows": rows, "text": text}
