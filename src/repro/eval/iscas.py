"""The benchmark suite: ISCAS-85 stand-ins.

The paper evaluates on ISCAS-85 circuits synthesized onto complex-gate
libraries.  The genuine synthesized netlists are not redistributable,
so each circuit is replaced by a functional or statistical stand-in of
matching size (DESIGN.md section 4):

* ``c17`` is the genuine netlist;
* ``c6288`` is a true 16x16 carry-save array multiplier (which is what
  c6288 is);
* ``c499``/``c1355`` are 32-bit single-error-correction circuits (the
  documented function of the originals; c1355 is the XOR-expanded
  variant, as in the original suite);
* ``c880a`` is an ALU (c880 is an 8-bit ALU), widened to match size;
* the remaining circuits are seeded random DAGs calibrated to the
  published input/output/gate counts.

Every circuit is technology-mapped onto the complex-gate library before
analysis, which is what puts multi-sensitization-vector gates on paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.gates.library import Library
from repro.netlist.circuit import Circuit
from repro.netlist.generate import (
    alu_slice,
    array_multiplier,
    c17,
    ecc_corrector,
    random_dag,
)
from repro.netlist.techmap import expand_xor, techmap


@dataclass(frozen=True)
class SuiteEntry:
    """One benchmark circuit: builder plus published reference sizes."""

    name: str
    build: Callable[[float, Optional[Library]], Circuit]
    #: Published ISCAS-85 statistics, for the record (our stand-ins are
    #: calibrated toward them, not forced to match exactly).
    ref_inputs: int
    ref_outputs: int
    ref_gates: int


def _rand(name: str, n_inputs: int, n_gates: int, seed: int, n_outputs: int):
    def build(scale: float = 1.0, library: Optional[Library] = None) -> Circuit:
        # Gate count scales linearly; I/O counts scale with sqrt(scale)
        # so that down-scaled circuits keep enough primary inputs to
        # have a realistic true-path yield (a 60-gate cone hanging off
        # 10 inputs is so reconvergent that almost every structural
        # path is false, unlike any real ISCAS circuit).
        io_scale = min(scale, 1.0) ** 0.5
        circuit = random_dag(
            name,
            max(8, int(n_inputs * io_scale)),
            max(8, int(n_gates * scale)),
            seed=seed,
            n_outputs=max(2, int(n_outputs * io_scale)),
            library=library,
        )
        return techmap(circuit)

    return build


def _c17(scale: float = 1.0, library: Optional[Library] = None) -> Circuit:
    return c17(library)


def _c499(scale: float = 1.0, library: Optional[Library] = None) -> Circuit:
    bits = max(8, int(32 * scale))
    return techmap(ecc_corrector(bits, library))


def _c1355(scale: float = 1.0, library: Optional[Library] = None) -> Circuit:
    bits = max(8, int(32 * scale))
    # The original c1355 is c499 with its XORs expanded to NAND gates;
    # expand_xor performs that expansion and the result is then mapped
    # like any synthesized netlist (the XORs do not reappear, so the
    # circuit genuinely differs from the c499 stand-in).
    expanded = expand_xor(ecc_corrector(bits, library))
    expanded.name = f"ecc{bits}_nand"
    return techmap(expanded)


def _c880a(scale: float = 1.0, library: Optional[Library] = None) -> Circuit:
    width = max(4, int(32 * scale))
    return techmap(alu_slice(width, library))


def _c6288(scale: float = 1.0, library: Optional[Library] = None) -> Circuit:
    width = max(4, int(16 * scale))
    return techmap(array_multiplier(width, library))


#: The evaluation suite, in the paper's Table 6 order.
ISCAS_SUITE: Dict[str, SuiteEntry] = {
    "c17": SuiteEntry("c17", _c17, 5, 2, 6),
    "c432": SuiteEntry("c432", _rand("c432", 36, 210, seed=432, n_outputs=7), 36, 7, 160),
    "c499": SuiteEntry("c499", _c499, 41, 32, 202),
    "c880a": SuiteEntry("c880a", _c880a, 60, 26, 383),
    "c1355": SuiteEntry("c1355", _c1355, 41, 32, 546),
    "c1908": SuiteEntry("c1908", _rand("c1908", 33, 950, seed=1908, n_outputs=25), 33, 25, 880),
    "c2670": SuiteEntry("c2670", _rand("c2670", 157, 1350, seed=2670, n_outputs=64), 233, 140, 1193),
    "c3540": SuiteEntry("c3540", _rand("c3540", 50, 1800, seed=3540, n_outputs=22), 50, 22, 1669),
    "c5315": SuiteEntry("c5315", _rand("c5315", 178, 2500, seed=5315, n_outputs=123), 178, 123, 2307),
    "c6288": SuiteEntry("c6288", _c6288, 32, 32, 2416),
    "c7552": SuiteEntry("c7552", _rand("c7552", 207, 3700, seed=7552, n_outputs=108), 207, 108, 3512),
}


def build_circuit(name: str, scale: float = 1.0,
                  library: Optional[Library] = None) -> Circuit:
    """Build one suite circuit; ``scale`` shrinks it for quick runs."""
    try:
        entry = ISCAS_SUITE[name]
    except KeyError:
        raise KeyError(f"unknown suite circuit {name!r}; have {list(ISCAS_SUITE)}") from None
    circuit = entry.build(scale, library)
    circuit.check()
    return circuit


def suite_names() -> list:
    return list(ISCAS_SUITE)
