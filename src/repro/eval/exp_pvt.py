"""Extension experiment: PVT-aware analysis (the paper's future work).

Equation (3) already carries temperature and supply terms; the paper
lists "considering parameter variations on the delay model" as future
work and notes that, because the tool relies on the analytical model
only, nothing but the model needs extending.  This module demonstrates
exactly that: characterize over a (T, VDD) grid, then re-run the same
single-pass analysis at corners -- no engine changes required.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.charlib.characterize import CharacterizationGrid, characterize_library
from repro.charlib.store import CharacterizedLibrary
from repro.core.sta import TruePathSTA
from repro.eval.tables import render_table
from repro.gates.library import Library, default_library
from repro.netlist.circuit import Circuit
from repro.tech.technology import Technology

#: Compact grid with PVT axes (order-of-minutes for a cell subset).
PVT_GRID = CharacterizationGrid(
    fo=(1.0, 4.0),
    t_in=(2e-11, 1.2e-10),
    temp=(25.0, 125.0),
    vdd_scale=(0.9, 1.0),
)

#: Corners in the classic naming.
CORNERS: Dict[str, Tuple[float, float]] = {
    "typical": (25.0, 1.0),
    "hot": (125.0, 1.0),
    "low-vdd": (25.0, 0.9),
    "worst": (125.0, 0.9),
}


def characterize_pvt(
    tech: Technology,
    cells: Sequence[str],
    library: Optional[Library] = None,
    steps_per_window: int = 250,
) -> CharacterizedLibrary:
    """Characterize a cell subset over the PVT grid (cached)."""
    return characterize_library(
        library or default_library(),
        tech,
        grid=PVT_GRID,
        cells=list(cells),
        steps_per_window=steps_per_window,
    )


def corner_analysis(
    circuit: Circuit,
    charlib: CharacterizedLibrary,
    tech: Technology,
    corners: Optional[Dict[str, Tuple[float, float]]] = None,
) -> Dict:
    """Worst true-path arrival of a circuit at each corner."""
    corners = corners or CORNERS
    rows: List[Dict] = []
    for name, (temp, vdd_scale) in corners.items():
        sta = TruePathSTA(circuit, charlib, temp=temp,
                          vdd=vdd_scale * tech.vdd)
        paths = sta.enumerate_paths()
        worst = max(paths, key=lambda p: p.worst_arrival)
        rows.append({
            "corner": name,
            "temp_c": temp,
            "vdd": round(vdd_scale * tech.vdd, 3),
            "worst_arrival": worst.worst_arrival,
            "worst_path": " -> ".join(worst.nets),
            "paths": len(paths),
        })
    text = render_table(
        ["corner", "T (C)", "VDD (V)", "worst arrival (ps)", "paths"],
        [[r["corner"], r["temp_c"], r["vdd"],
          f"{r['worst_arrival'] * 1e12:.1f}", r["paths"]] for r in rows],
        title=f"Corner analysis of {circuit.name} ({tech.name})",
    )
    return {"rows": rows, "text": text}
