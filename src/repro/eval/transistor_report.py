"""Transistor-level current-path analysis (the paper's Figures 2-3).

Figures 2 and 3 annotate each sensitization vector of AO22 (falling
input A) and OA12 (rising input C) with the ON/OFF/switching state of
every transistor and the resulting current paths.  This module derives
the same annotation programmatically from the cell topology, and the
associated benchmark checks the paper's causal claims (the fast case
has the most parallel ON devices feeding the switching network; the
charge-stealing device distinguishes cases 2 and 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.gates.cell import Cell, SensitizationVector
from repro.spice.topology import CellTopology, GND_NODE, VDD_NODE, build_topology
from repro.tech.technology import Technology

#: Device states in the figures' notation.
ON = "on"          # solid arrow
OFF = "off"        # solid cross
TURNS_ON = "turns_on"    # dashed arrow
TURNS_OFF = "turns_off"  # dashed cross


@dataclass
class DeviceState:
    name: str
    kind: str
    gate: str
    a: str
    b: str
    state: str


@dataclass
class VectorAnalysis:
    """Transistor annotation of one (pin, vector, input edge)."""

    cell_name: str
    pin: str
    vector_id: str
    case: int
    input_rising: bool
    devices: List[DeviceState]

    def on_count(self, kind: Optional[str] = None) -> int:
        return sum(
            1
            for d in self.devices
            if d.state == ON and (kind is None or d.kind == kind)
        )

    def describe(self) -> str:
        header = (
            f"{self.cell_name}.{self.pin} case {self.case} "
            f"({'rising' if self.input_rising else 'falling'} input)"
        )
        lines = [header]
        for d in self.devices:
            lines.append(
                f"  {d.name:5s} {d.kind}MOS gate={d.gate:6s} "
                f"{d.a}<->{d.b}: {d.state}"
            )
        return "\n".join(lines)


def _pin_levels(cell: Cell, vector: SensitizationVector, pin_value: int) -> Dict[str, int]:
    levels = dict(vector.side_values)
    levels[vector.pin] = pin_value
    return levels


def _device_conducts(kind: str, gate_level: int) -> bool:
    return gate_level == 1 if kind == "n" else gate_level == 0


def _node_level(node: str, levels: Dict[str, int]) -> Optional[int]:
    """Logic level of a transistor gate node, resolving the internal
    inverted-input and core nodes where determinable."""
    if node in levels:
        return levels[node]
    if node.endswith(tuple(f"_n{i}" for i in range(10))) or "_n" in node:
        # internal inverted pin node: name starts with "<pin>_n"
        pin = node.split("_n")[0]
        if pin in levels:
            return 1 - levels[pin]
    return None


def analyze_vector(
    cell: Cell,
    tech: Technology,
    vector: SensitizationVector,
    input_rising: bool,
) -> VectorAnalysis:
    """Annotate every device of the cell for one sensitization vector."""
    topo = build_topology(cell, tech)
    initial = _pin_levels(cell, vector, 0 if input_rising else 1)
    final = _pin_levels(cell, vector, 1 if input_rising else 0)

    # Resolve the core node Y (input of the output inverter) logically.
    core = cell.core_function()

    def core_level(levels: Dict[str, int]) -> int:
        return core.eval([levels[p] for p in cell.inputs])

    initial_nodes = dict(initial)
    final_nodes = dict(final)
    if cell.output_inverter:
        initial_nodes["Y"] = core_level(initial)
        final_nodes["Y"] = core_level(final)

    devices: List[DeviceState] = []
    for t in topo.transistors:
        before = _node_level(t.gate, initial_nodes)
        after = _node_level(t.gate, final_nodes)
        if before is None or after is None:
            state = OFF  # undeterminable internal node; not used in Figs 2-3
        else:
            conducts_before = _device_conducts(t.kind, before)
            conducts_after = _device_conducts(t.kind, after)
            if conducts_before and conducts_after:
                state = ON
            elif not conducts_before and not conducts_after:
                state = OFF
            elif conducts_after:
                state = TURNS_ON
            else:
                state = TURNS_OFF
        devices.append(DeviceState(t.name, t.kind, t.gate, t.a, t.b, state))
    return VectorAnalysis(
        cell_name=cell.name,
        pin=vector.pin,
        vector_id=vector.vector_id,
        case=vector.case,
        input_rising=input_rising,
        devices=devices,
    )


def parallel_on_devices(analysis: VectorAnalysis, through_pin: str) -> int:
    """Count steady-ON devices of the network that must source/sink the
    switching current (same MOS kind as the device gated by the
    sensitized pin that turns on)."""
    switching = [
        d for d in analysis.devices
        if d.gate == through_pin and d.state in (TURNS_ON, TURNS_OFF)
    ]
    if not switching:
        return 0
    kind = switching[0].kind
    return analysis.on_count(kind)
