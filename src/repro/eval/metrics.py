"""Error statistics for the accuracy tables (Tables 7-9)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence


@dataclass
class ErrorStats:
    """Mean/max relative errors over paths and individual gates."""

    mean_path_error: float
    max_path_error: float
    mean_gate_error: float
    max_gate_error: float
    n_paths: int
    n_gates: int

    def as_row(self) -> Dict[str, str]:
        return {
            "mean_path": f"{100 * self.mean_path_error:.2f}%",
            "max_path": f"{100 * self.max_path_error:.2f}%",
            "mean_gate": f"{100 * self.mean_gate_error:.2f}%",
            "max_gate": f"{100 * self.max_gate_error:.2f}%",
        }


def relative_error(estimate: float, golden: float) -> float:
    if golden == 0:
        raise ValueError("golden delay is zero")
    return abs(estimate - golden) / abs(golden)


def error_stats(
    path_pairs: Sequence[tuple],
    gate_pairs: Sequence[tuple],
) -> ErrorStats:
    """Build stats from (estimate, golden) pairs.

    ``path_pairs`` compares whole-path delays, ``gate_pairs`` compares
    per-gate stage delays (the paper reports both granularities).
    """
    path_errors = [relative_error(e, g) for e, g in path_pairs]
    gate_errors = [relative_error(e, g) for e, g in gate_pairs]
    if not path_errors or not gate_errors:
        raise ValueError("need at least one path and one gate sample")
    return ErrorStats(
        mean_path_error=sum(path_errors) / len(path_errors),
        max_path_error=max(path_errors),
        mean_gate_error=sum(gate_errors) / len(gate_errors),
        max_gate_error=max(gate_errors),
        n_paths=len(path_errors),
        n_gates=len(gate_errors),
    )
