"""Experiment: Tables 3 and 4 -- vector-dependent gate delay.

For AO22 (input A) and OA12 (input C), measure the electrical
propagation delay under every sensitization vector, for rising and
falling input edges, across the three technologies, each gate loaded
with a gate of its own type -- the exact setup of the paper's Tables 3
and 4.  Reported alongside are the percentage differences of cases 2/3
relative to case 1.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.eval.tables import format_pct, format_ps, render_table
from repro.gates.library import Library, default_library
from repro.spice.cellsim import CellSimulator
from repro.tech.presets import TECHNOLOGIES
from repro.tech.technology import Technology


def vector_delay_rows(
    cell_name: str,
    pin: str,
    technologies: Optional[Dict[str, Technology]] = None,
    t_in: float = 50e-12,
    library: Optional[Library] = None,
    steps_per_window: int = 400,
) -> List[Dict]:
    """One row per (technology, input edge) with per-case delays."""
    library = library or default_library()
    technologies = technologies or TECHNOLOGIES
    cell = library[cell_name]
    vectors = cell.sensitization_vectors(pin)
    rows: List[Dict] = []
    for tech_name, tech in technologies.items():
        sim = CellSimulator(cell, tech, steps_per_window=steps_per_window)
        load = sim.same_gate_load()
        for input_rising in (True, False):
            delays = {}
            for vec in vectors:
                result = sim.propagation(
                    pin, vec, input_rising, t_in=t_in, c_load=load
                )
                delays[vec.case] = result.delay
            reference = delays[1]
            row = {
                "tech": tech_name,
                "edge": "In Rise" if input_rising else "In Fall",
                "delays": delays,
                "diffs": {
                    case: delays[case] / reference - 1.0
                    for case in delays
                    if case != 1
                },
            }
            rows.append(row)
    return rows


def run(
    technologies: Optional[Dict[str, Technology]] = None,
    t_in: float = 50e-12,
    library: Optional[Library] = None,
    steps_per_window: int = 400,
) -> Dict:
    """Regenerate Tables 3 (AO22 input A) and 4 (OA12 input C)."""
    specs = [("AO22", "A", "Table 3"), ("OA12", "C", "Table 4")]
    out: Dict[str, object] = {}
    texts = []
    for cell_name, pin, label in specs:
        rows = vector_delay_rows(
            cell_name, pin, technologies, t_in, library, steps_per_window
        )
        out[cell_name] = rows
        cases = sorted(rows[0]["delays"])
        headers = (
            ["tech", "edge"]
            + [f"Case {c} (ps)" for c in cases]
            + [f"%diff {c}" for c in cases if c != 1]
        )
        table_rows = []
        for row in rows:
            cells = [row["tech"], row["edge"]]
            cells += [format_ps(row["delays"][c]) for c in cases]
            cells += [format_pct(row["diffs"][c]) for c in cases if c != 1]
            table_rows.append(cells)
        texts.append(
            render_table(
                headers, table_rows,
                title=f"{label}: {cell_name} propagation delay (input {pin})",
            )
        )
    out["text"] = "\n\n".join(texts)
    return out
