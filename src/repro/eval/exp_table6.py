"""Experiment: Table 6 -- path identification across the suite.

For every benchmark circuit, compares:

**Developed tool** -- single-pass exhaustive enumeration: number of
input vectors found (each surviving polarity of each sensitization is
one vector), number of multi-vector paths, CPU time.

**Commercial baseline** -- longest-first structural enumeration with a
backtrack-limited, easiest-vector sensitization: CPU time, paths
explored, paths found true, paths *misidentified* as false (declared
false but proven true by the developed tool), paths hitting the
backtrack limit, the no-vector ratio, and the worst-delay prediction
ratio (how often the baseline's single reported vector is actually the
worst vector of its path).

Counting notes vs the paper: the paper's per-circuit absolute counts
depend on their synthesized netlists, which we do not have; the bench
asserts the *relative* claims (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baseline.sensitize import PathStatus
from repro.baseline.sta2step import TwoStepSTA
from repro.charlib.store import CharacterizedLibrary
from repro.core.path import TimedPath
from repro.core.sta import TruePathSTA
from repro.eval.iscas import build_circuit
from repro.eval.tables import render_table
from repro.netlist.circuit import Circuit

#: Tolerance for "predicted the worst delay correctly".
WORST_DELAY_TOL = 0.005


@dataclass
class Table6Row:
    circuit: str
    gates: int
    complex_gates: int
    # Developed tool
    dev_input_vectors: int = 0
    dev_multi_vector_paths: int = 0
    dev_cpu: float = 0.0
    dev_capped: bool = False
    # Baseline
    backtrack_limit: Optional[int] = None
    base_cpu: float = 0.0
    base_paths: int = 0
    base_true: int = 0
    base_false_misidentified: int = 0
    base_aborted: int = 0
    no_vector_ratio: float = 0.0
    worst_delay_ratio: Optional[float] = None

    def as_cells(self) -> List[object]:
        return [
            self.circuit,
            self.gates,
            self.dev_input_vectors,
            self.dev_multi_vector_paths,
            f"{self.dev_cpu:.2f}",
            self.backtrack_limit,
            f"{self.base_cpu:.2f}",
            self.base_paths,
            self.base_true,
            self.base_false_misidentified,
            self.base_aborted,
            f"{100 * self.no_vector_ratio:.1f}%",
            "-" if self.worst_delay_ratio is None
            else f"{100 * self.worst_delay_ratio:.1f}%",
        ]


HEADERS = [
    "circuit", "gates", "input vectors", "multi-vec paths", "dev CPU (s)",
    "bt limit", "base CPU (s)", "#paths", "#true", "#false(mis)",
    "bt-limited", "no-vector %", "worst-delay %",
]


def count_input_vectors(paths: Sequence[TimedPath]) -> int:
    """Each surviving polarity of each sensitization is one circuit
    input vector that propagates a transition along the path."""
    return sum(len(p.polarities()) for p in paths)


def multi_vector_path_count(paths: Sequence[TimedPath]) -> int:
    """Distinct courses traversing at least one multi-vector pin."""
    return len({p.course for p in paths if p.multi_vector})


def worst_delay_prediction_ratio(
    dev_paths: Sequence[TimedPath],
    base_true: Sequence[TimedPath],
    tolerance: float = WORST_DELAY_TOL,
) -> Optional[float]:
    """Fraction of multi-vector courses where the baseline's single
    reported vector actually achieves the worst delay of the course.

    The developed tool's vector-resolved delays arbitrate (the paper
    uses electrical simulation; Tables 7-9 show the polynomial model is
    within a few percent, which is enough to rank vectors whose spread
    is 10-25%).
    """
    by_course: Dict[Tuple[str, ...], List[TimedPath]] = {}
    for p in dev_paths:
        by_course.setdefault(p.course, []).append(p)
    judged = 0
    correct = 0
    for bpath in base_true:
        if not bpath.multi_vector:
            continue
        variants = by_course.get(bpath.course)
        if not variants or len(variants) < 2:
            continue
        worst = max(v.worst_arrival for v in variants)
        chosen = next(
            (v for v in variants if v.vector_signature == bpath.vector_signature),
            None,
        )
        if chosen is None:
            continue
        judged += 1
        if chosen.worst_arrival >= worst * (1.0 - tolerance):
            correct += 1
    if judged == 0:
        return None
    return correct / judged


def worst_delay_prediction_ratio_golden(
    circuit: Circuit,
    tech,
    charlib_poly: CharacterizedLibrary,
    dev_paths: Sequence[TimedPath],
    base_true: Sequence[TimedPath],
    sample: int = 3,
    steps_per_window: int = 300,
    tolerance: float = WORST_DELAY_TOL,
) -> Optional[float]:
    """Like :func:`worst_delay_prediction_ratio` but arbitrated by the
    transistor-level chain simulation (the paper's method) on up to
    ``sample`` multi-vector courses.  Slow; opt-in via ``run_circuit``'s
    ``golden_sample``."""
    from repro.eval.golden import simulate_timed_path
    from repro.spice.pathsim import PathSimulator

    by_course: Dict[Tuple[str, ...], List[TimedPath]] = {}
    for p in dev_paths:
        by_course.setdefault(p.course, []).append(p)
    candidates = [
        bp for bp in base_true
        if bp.multi_vector and len(by_course.get(bp.course, [])) >= 2
    ][:sample]
    if not candidates:
        return None
    simulator = PathSimulator(tech, steps_per_window=steps_per_window)
    correct = 0
    judged = 0
    for bpath in candidates:
        goldens: Dict[Tuple[str, ...], float] = {}
        for variant in by_course[bpath.course]:
            polarity = max(variant.polarities(), key=lambda q: q.arrival)
            result = simulate_timed_path(
                circuit, charlib_poly, tech, variant, polarity,
                simulator=simulator,
            )
            goldens[variant.vector_signature] = result.path_delay
        chosen = goldens.get(bpath.vector_signature)
        if chosen is None:
            continue
        judged += 1
        if chosen >= max(goldens.values()) * (1.0 - tolerance):
            correct += 1
    return correct / judged if judged else None


def run_circuit(
    name: str,
    circuit: Circuit,
    charlib_poly: CharacterizedLibrary,
    charlib_lut: CharacterizedLibrary,
    backtrack_limit: int = 1000,
    max_dev_paths: Optional[int] = 20000,
    max_structural_paths: int = 1000,
    tech=None,
    golden_sample: int = 0,
) -> Table6Row:
    stats = circuit.stats()
    row = Table6Row(
        circuit=name,
        gates=stats["gates"],
        complex_gates=stats["complex_gates"],
        backtrack_limit=backtrack_limit,
    )

    sta = TruePathSTA(circuit, charlib_poly)
    dev_paths = sta.enumerate_paths(max_paths=max_dev_paths)
    row.dev_input_vectors = count_input_vectors(dev_paths)
    row.dev_multi_vector_paths = multi_vector_path_count(dev_paths)
    row.dev_cpu = sta.last_stats.cpu_seconds
    row.dev_capped = (
        max_dev_paths is not None and len(dev_paths) >= max_dev_paths
    )

    baseline = TwoStepSTA(circuit, charlib_lut, backtrack_limit=backtrack_limit)
    report = baseline.run(max_structural_paths=max_structural_paths)
    row.base_cpu = report.cpu_seconds
    row.base_paths = report.paths_explored
    row.base_true = report.true_paths
    row.base_aborted = report.backtrack_limited
    row.no_vector_ratio = report.no_vector_ratio

    # Misidentified-false: declared false by the baseline but proven
    # true (under some vector) by the developed tool.
    dev_courses = {p.course for p in dev_paths}
    misidentified = 0
    for outcome, spath in zip(report.results, report.structural_paths):
        if outcome.status is PathStatus.FALSE and baseline.course_of(spath) in dev_courses:
            misidentified += 1
    row.base_false_misidentified = misidentified
    base_true_paths = baseline.true_paths(report)

    if golden_sample and tech is not None:
        row.worst_delay_ratio = worst_delay_prediction_ratio_golden(
            circuit, tech, charlib_poly, dev_paths, base_true_paths,
            sample=golden_sample,
        )
        if row.worst_delay_ratio is None:
            row.worst_delay_ratio = worst_delay_prediction_ratio(
                dev_paths, base_true_paths
            )
    else:
        row.worst_delay_ratio = worst_delay_prediction_ratio(
            dev_paths, base_true_paths
        )
    return row


def run(
    charlibs_poly: CharacterizedLibrary,
    charlibs_lut: CharacterizedLibrary,
    circuits: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    backtrack_limit: int = 1000,
    max_dev_paths: Optional[int] = 20000,
    max_structural_paths: int = 1000,
) -> Dict:
    """Regenerate Table 6 over (a subset of) the suite."""
    names = list(circuits) if circuits else [
        "c17", "c432", "c499", "c880a", "c1355", "c1908",
    ]
    rows: List[Table6Row] = []
    for name in names:
        circuit = build_circuit(name, scale=scale)
        rows.append(
            run_circuit(
                name,
                circuit,
                charlibs_poly,
                charlibs_lut,
                backtrack_limit=backtrack_limit,
                max_dev_paths=max_dev_paths,
                max_structural_paths=max_structural_paths,
            )
        )
    text = render_table(HEADERS, [r.as_cells() for r in rows],
                        title="Table 6: path identification")
    return {"rows": rows, "text": text}
