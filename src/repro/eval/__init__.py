"""Experiment harness regenerating every table of the paper.

One module per experiment family:

* :mod:`repro.eval.iscas` -- the benchmark suite (ISCAS-85 stand-ins);
* :mod:`repro.eval.fig4` -- the paper's Figure 4 example circuit;
* :mod:`repro.eval.transistor_report` -- the Fig. 2/3 transistor-level
  current-path analysis;
* :mod:`repro.eval.metrics` -- error statistics;
* :mod:`repro.eval.tables` -- plain-text table rendering;
* :mod:`repro.eval.experiments` -- runners for Tables 1-9.
"""

from repro.eval.iscas import ISCAS_SUITE, build_circuit
from repro.eval.tables import render_table

__all__ = ["ISCAS_SUITE", "build_circuit", "render_table"]
