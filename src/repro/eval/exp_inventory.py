"""Circuit inventory ("Table 0"): the benchmark suite at a glance.

The paper's Table 6 implicitly relies on the reader knowing the ISCAS-85
suite; since our circuits are stand-ins, this runner prints their actual
statistics next to the published reference sizes so every other table
can be read in context.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.eval.iscas import ISCAS_SUITE, build_circuit
from repro.eval.tables import render_table


def run(
    circuits: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> Dict:
    names = list(circuits) if circuits else list(ISCAS_SUITE)
    rows: List[List[object]] = []
    structured = []
    for name in names:
        entry = ISCAS_SUITE[name]
        circuit = build_circuit(name, scale=scale)
        stats = circuit.stats()
        histogram = circuit.cell_histogram()
        complex_density = (
            stats["complex_gates"] / stats["gates"] if stats["gates"] else 0.0
        )
        top_cells = ", ".join(
            f"{cell}x{count}"
            for cell, count in sorted(
                histogram.items(), key=lambda kv: -kv[1]
            )[:3]
        )
        rows.append([
            name,
            f"{entry.ref_inputs}/{entry.ref_outputs}/{entry.ref_gates}",
            f"{stats['inputs']}/{stats['outputs']}/{stats['gates']}",
            stats["depth"],
            f"{complex_density * 100:.0f}%",
            top_cells,
        ])
        structured.append({
            "name": name,
            "stats": stats,
            "histogram": histogram,
            "complex_density": complex_density,
        })
    text = render_table(
        ["circuit", "ref I/O/gates", "ours I/O/gates", "depth",
         "complex %", "top cells"],
        rows,
        title=f"Benchmark suite inventory (scale {scale})",
    )
    return {"rows": structured, "text": text}
