"""Experiment: Tables 1 and 2 -- propagation tables of AO22 and OA12.

Pure gate-library computation: enumerate every sensitization vector of
every input pin and render the paper's propagation-table format (side
values plus "T" on the sensitized pin).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.eval.tables import render_table
from repro.gates.library import Library, default_library


def propagation_table(cell_name: str, library: Optional[Library] = None) -> Dict:
    """Structured propagation table of one cell."""
    library = library or default_library()
    cell = library[cell_name]
    rows = []
    for pin in cell.inputs:
        for vec in cell.sensitization_vectors(pin):
            row = {"case": f"Case {vec.case}"}
            for p in cell.inputs:
                row[p] = "T" if p == pin else str(vec.side_values[p])
            row["Z"] = "T"
            rows.append(row)
    return {
        "cell": cell_name,
        "pins": list(cell.inputs),
        "rows": rows,
        "vectors_per_pin": {
            pin: len(cell.sensitization_vectors(pin)) for pin in cell.inputs
        },
        "total_vectors": sum(
            len(v) for v in cell.sensitization_vectors().values()
        ),
    }


def run(cells=("AO22", "OA12"), library: Optional[Library] = None) -> Dict:
    """Regenerate Tables 1 and 2."""
    results = {name: propagation_table(name, library) for name in cells}
    texts = []
    for name, data in results.items():
        headers = ["case"] + data["pins"] + ["Z"]
        rows = [[r[h] for h in headers] for r in data["rows"]]
        texts.append(render_table(headers, rows, title=f"Propagation table {name}"))
    return {"tables": results, "text": "\n\n".join(texts)}
