"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table (all cells stringified)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for k, cell in enumerate(row):
            if k < len(widths):
                widths[k] = max(widths[k], len(cell))
            else:
                widths.append(len(cell))

    def fmt(row: Sequence[str]) -> str:
        return " | ".join(c.ljust(widths[k]) for k, c in enumerate(row))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def render_dict_rows(rows: List[Dict[str, object]], title: Optional[str] = None) -> str:
    """Render homogeneous dict rows (keys of the first row are the
    column order)."""
    if not rows:
        return title or "(empty)"
    headers = list(rows[0])
    return render_table(headers, [[row.get(h, "") for h in headers] for row in rows],
                        title=title)


def format_ps(seconds: float) -> str:
    return f"{seconds * 1e12:.2f}"


def format_pct(fraction: float, signed: bool = True) -> str:
    sign = "+" if signed else ""
    return f"{fraction * 100:{sign}.2f}%"
